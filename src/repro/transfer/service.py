"""A Globus-Transfer-like cloud-managed data transfer service.

The paper uses Globus Transfer as the wide-area data plane of ProxyStore's
Globus backend.  Its performance signature (§V-C2, §V-D1) is:

* submitting a transfer is an HTTPS request taking ≈500 ms on average;
* a transfer "typically completes in 1–5 s, depending on data transfer node
  utilization and concurrent transfer limits per user" — i.e. a size-
  independent orchestration floor for payloads up to ≈100 MB, after which
  bandwidth matters;
* the service enforces a per-user concurrent-transfer limit (the paper
  suggests fusing files into one task to sidestep it);
* the cloud service is store-and-forward robust: submitted tasks survive
  client disconnection and endpoints being temporarily offline.

:class:`TransferService` reproduces all four.  It runs a dispatcher thread
pinned to the Globus cloud site; each active transfer is simulated by a
short-lived DTN thread that sleeps the modeled duration then copies file
bytes between the endpoints' staging volumes.
"""

from __future__ import annotations

import hashlib
import itertools
import threading
from dataclasses import dataclass, field
from enum import Enum

from repro.chaos.plan import chaos_check
from repro.exceptions import TransferError
from repro.net.clock import Clock, get_clock
from repro.net.context import SiteThread
from repro.net.defaults import PaperConstants
from repro.net.fs import FileSystem
from repro.net.topology import Network, Site
from repro.observe import TraceContext, counter_inc, gauge_set, observe, record_span

__all__ = [
    "TransferEndpoint",
    "TransferItem",
    "TransferStatus",
    "TransferTask",
    "TransferService",
]


@dataclass(frozen=True)
class TransferEndpoint:
    """A Globus collection: a named staging volume at a site."""

    endpoint_id: str
    site: Site
    volume: FileSystem
    # An endpoint can be administratively paused (maintenance) or offline;
    # transfers touching it wait rather than fail, like real Globus.
    # Mutable flag lives on the service side (endpoints are frozen records).


@dataclass(frozen=True)
class TransferItem:
    src_path: str
    dst_path: str


class TransferStatus(str, Enum):
    QUEUED = "QUEUED"
    ACTIVE = "ACTIVE"
    SUCCEEDED = "SUCCEEDED"
    FAILED = "FAILED"
    CANCELLED = "CANCELLED"

    @property
    def terminal(self) -> bool:
        return self in (
            TransferStatus.SUCCEEDED,
            TransferStatus.FAILED,
            TransferStatus.CANCELLED,
        )


@dataclass
class TransferTask:
    task_id: str
    user: str
    src: TransferEndpoint
    dst: TransferEndpoint
    items: tuple[TransferItem, ...]
    status: TransferStatus = TransferStatus.QUEUED
    submitted_at: float = 0.0
    started_at: float | None = None
    completed_at: float | None = None
    bytes_transferred: int = 0
    error: str | None = None
    retries: int = 0
    trace_ctx: TraceContext | None = None
    #: Set once when the per-user concurrency limit first defers this task,
    #: so the ``transfer.limit_stalls`` counter ticks once per task, not
    #: once per dispatcher sweep.
    limit_stalled: bool = False
    #: Cancellation is asynchronous like real Globus: the flag is observed
    #: at the next opportunity (queue pop, DTN completion, retry decision).
    cancel_requested: bool = False
    done_event: threading.Event = field(default_factory=threading.Event, repr=False)


class TransferService:
    """The cloud service: accepts tasks, enforces per-user concurrency,
    drives DTN copy threads, and answers status polls."""

    MAX_RETRIES = 2

    def __init__(
        self,
        site: Site,
        network: Network,
        constants: PaperConstants | None = None,
        clock: Clock | None = None,
    ) -> None:
        self.site = site
        self._network = network
        self._constants = constants or PaperConstants()
        self._clock = clock or get_clock()
        self._endpoints: dict[str, TransferEndpoint] = {}
        self._paused: set[str] = set()
        self._tasks: dict[str, TransferTask] = {}
        self._queue: list[str] = []
        self._active_by_user: dict[str, int] = {}
        self._lock = threading.Lock()
        self._wakeup = threading.Condition(self._lock)
        self._ids = itertools.count()
        self._running = False
        self._dispatcher: SiteThread | None = None
        self._fail_next: list[str] = []  # test hook: error messages to inject

    # -- lifecycle ----------------------------------------------------------
    def start(self) -> "TransferService":
        if self._running:
            return self
        self._running = True
        self._dispatcher = SiteThread(
            self.site, target=self._dispatch_loop, name="globus-dispatcher"
        )
        self._dispatcher.start()
        return self

    def stop(self) -> None:
        with self._wakeup:
            self._running = False
            self._wakeup.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout=5)

    # -- endpoint registry ----------------------------------------------------
    def register_endpoint(self, endpoint: TransferEndpoint) -> TransferEndpoint:
        with self._lock:
            if endpoint.endpoint_id in self._endpoints:
                raise TransferError(
                    f"endpoint {endpoint.endpoint_id!r} already registered"
                )
            self._endpoints[endpoint.endpoint_id] = endpoint
        return endpoint

    def endpoint(self, endpoint_id: str) -> TransferEndpoint:
        try:
            return self._endpoints[endpoint_id]
        except KeyError:
            raise TransferError(f"unknown endpoint {endpoint_id!r}") from None

    def pause_endpoint(self, endpoint_id: str) -> None:
        """Take an endpoint offline; its transfers wait (store-and-forward)."""
        with self._wakeup:
            self.endpoint(endpoint_id)
            self._paused.add(endpoint_id)

    def resume_endpoint(self, endpoint_id: str) -> None:
        with self._wakeup:
            self._paused.discard(endpoint_id)
            self._wakeup.notify_all()

    def inject_failure(self, message: str = "DTN checksum mismatch") -> None:
        """Make the next started transfer attempt fail (for failure tests)."""
        with self._lock:
            self._fail_next.append(message)

    # -- service API (no latency here; clients charge their own wire time) ----
    def submit(
        self,
        user: str,
        src_endpoint: str,
        dst_endpoint: str,
        items: list[TransferItem] | list[tuple[str, str]],
        *,
        trace_ctx: TraceContext | None = None,
    ) -> str:
        src, dst = self.endpoint(src_endpoint), self.endpoint(dst_endpoint)
        norm = tuple(
            it if isinstance(it, TransferItem) else TransferItem(*it) for it in items
        )
        if not norm:
            raise TransferError("a transfer task needs at least one item")
        task_id = f"gt-{next(self._ids):06d}"
        task = TransferTask(
            task_id=task_id,
            user=user,
            src=src,
            dst=dst,
            items=norm,
            submitted_at=self._clock.now(),
            trace_ctx=trace_ctx,
        )
        with self._wakeup:
            self._tasks[task_id] = task
            self._queue.append(task_id)
            self._wakeup.notify_all()
        return task_id

    def status(self, task_id: str) -> TransferTask:
        with self._lock:
            try:
                return self._tasks[task_id]
            except KeyError:
                raise TransferError(f"unknown transfer task {task_id!r}") from None

    def active_count(self, user: str) -> int:
        with self._lock:
            return self._active_by_user.get(user, 0)

    def cancel(self, task_id: str) -> bool:
        """Request cancellation; returns True unless already terminal.

        A QUEUED task is cancelled immediately; an ACTIVE one finishes as
        CANCELLED when its DTN thread next checks the flag (the in-flight
        copy is abandoned, no destination files are written)."""
        with self._wakeup:
            task = self._tasks.get(task_id)
            if task is None:
                raise TransferError(f"unknown transfer task {task_id!r}")
            if task.status.terminal:
                return False
            task.cancel_requested = True
            if task.status is TransferStatus.QUEUED:
                self._queue = [tid for tid in self._queue if tid != task_id]
                task.status = TransferStatus.CANCELLED
                task.completed_at = self._clock.now()
                task.error = "cancelled by client"
                task.done_event.set()
                counter_inc("transfer.cancelled", user=task.user)
                self._wakeup.notify_all()
            return True

    # -- dispatcher --------------------------------------------------------------
    def _eligible(self, task: TransferTask) -> bool:
        limit = self._constants.globus_concurrent_transfer_limit
        if self._active_by_user.get(task.user, 0) >= limit:
            if not task.limit_stalled:
                task.limit_stalled = True
                counter_inc("transfer.limit_stalls", user=task.user)
            return False
        if task.src.endpoint_id in self._paused or task.dst.endpoint_id in self._paused:
            return False
        return True

    def _dispatch_loop(self) -> None:
        while True:
            with self._wakeup:
                if not self._running:
                    return
                started: list[TransferTask] = []
                remaining: list[str] = []
                for task_id in self._queue:
                    task = self._tasks[task_id]
                    if self._eligible(task):
                        task.status = TransferStatus.ACTIVE
                        task.started_at = self._clock.now()
                        self._active_by_user[task.user] = (
                            self._active_by_user.get(task.user, 0) + 1
                        )
                        started.append(task)
                    else:
                        remaining.append(task_id)
                self._queue = remaining
                gauge_set("transfer.active", sum(self._active_by_user.values()))
                if not started:
                    self._wakeup.wait(
                        self._clock.wall_timeout(self._constants.globus_poll_interval)
                    )
                    continue
            for task in started:
                SiteThread(
                    self.site,
                    target=self._run_transfer,
                    args=(task,),
                    name=f"dtn-{task.task_id}",
                ).start()

    def _transfer_duration(self, task: TransferTask, total_bytes: int) -> float:
        c = self._constants
        base = self._network._sample(c.globus_transfer_base)
        wire = total_bytes / min(
            c.globus_dtn_bandwidth,
            self._network.bandwidth(task.src.site, task.dst.site),
        )
        return base + c.globus_per_file_overhead * len(task.items) + wire

    def _chaos_key(self, task: TransferTask) -> str:
        """Content-derived fault key: the destination path set names the
        logical transfer stably across retries and runs."""
        digest = hashlib.sha256(
            "|".join(sorted(item.dst_path for item in task.items)).encode()
        )
        return digest.hexdigest()[:16]

    def _run_transfer(self, task: TransferTask) -> None:
        try:
            staged: list[tuple[str, bytes, int]] = []
            total = 0
            for item in task.items:
                data, nominal = task.src.volume.raw(item.src_path)
                staged.append((item.dst_path, data, nominal))
                total += nominal
            self._clock.sleep(self._transfer_duration(task, total))
            if task.cancel_requested:
                self._finish(
                    task, TransferStatus.CANCELLED, error="cancelled by client"
                )
                counter_inc("transfer.cancelled", user=task.user)
                return
            with self._lock:
                injected = self._fail_next.pop(0) if self._fail_next else None
            spec = chaos_check(
                "transfer.attempt",
                self._chaos_key(task),
                attempt=task.retries,
                user=task.user,
            )
            if spec is not None:
                if spec.delay:
                    self._clock.sleep(spec.delay)  # a stall before the failure
                injected = f"injected fault {spec.mode!r}: DTN aborted mid-copy"
            if injected is not None:
                raise TransferError(injected)
            for dst_path, data, nominal in staged:
                task.dst.volume.write_raw(dst_path, data, nominal)
            self._finish(task, TransferStatus.SUCCEEDED, bytes_done=total)
        except TransferError as exc:
            if task.cancel_requested:
                self._finish(
                    task, TransferStatus.CANCELLED, error="cancelled by client"
                )
                counter_inc("transfer.cancelled", user=task.user)
            elif task.retries < self.MAX_RETRIES:
                with self._wakeup:
                    task.retries += 1
                    task.status = TransferStatus.QUEUED
                    self._active_by_user[task.user] -= 1
                    self._queue.append(task.task_id)
                    counter_inc("transfer.retries", user=task.user)
                    self._wakeup.notify_all()
            else:
                self._finish(task, TransferStatus.FAILED, error=str(exc))
        except Exception as exc:  # unexpected: fail the task, don't kill the DTN
            self._finish(task, TransferStatus.FAILED, error=repr(exc))

    def _finish(
        self,
        task: TransferTask,
        status: TransferStatus,
        *,
        bytes_done: int = 0,
        error: str | None = None,
    ) -> None:
        with self._wakeup:
            task.status = status
            task.completed_at = self._clock.now()
            task.bytes_transferred = bytes_done
            task.error = error
            self._active_by_user[task.user] -= 1
            task.done_event.set()
            self._wakeup.notify_all()
        record_span(
            "globus.transfer",
            parent=task.trace_ctx,
            start=task.submitted_at,
            end=task.completed_at,
            task_id=task.task_id,
            status=status.value,
            bytes=bytes_done,
            files=len(task.items),
            retries=task.retries,
        )
        if task.started_at is not None:
            observe("transfer.queue_wait_s", task.started_at - task.submitted_at)
            observe("transfer.active_s", task.completed_at - task.started_at)
