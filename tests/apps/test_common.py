"""Tests for the environment registry and workflow wiring."""

import pytest

from repro.apps import (
    AppMethod,
    TopicPolicy,
    build_workflow,
    clear_software,
    get_software,
    register_software,
    unregister_software,
)
from repro.core.task_server import FuncXTaskServer, ParslTaskServer
from repro.exceptions import WorkflowError
from repro.net.context import at_site


def _noop():
    return None


# -- environment registry ------------------------------------------------------


def test_register_and_get():
    register_software("tool", {"v": 1})
    assert get_software("tool") == {"v": 1}


def test_duplicate_requires_replace():
    register_software("tool", 1)
    with pytest.raises(WorkflowError):
        register_software("tool", 2)
    register_software("tool", 2, replace=True)
    assert get_software("tool") == 2


def test_missing_software_raises():
    with pytest.raises(WorkflowError):
        get_software("ghost")


def test_unregister_and_clear():
    register_software("a", 1)
    unregister_software("a")
    with pytest.raises(WorkflowError):
        get_software("a")
    register_software("b", 2)
    clear_software()
    with pytest.raises(WorkflowError):
        get_software("b")


# -- AppMethod / TopicPolicy validation ---------------------------------------------


def test_app_method_validates_resource():
    with pytest.raises(WorkflowError):
        AppMethod(_noop, resource="tpu", topic="t")


def test_topic_policy_validates_locality():
    with pytest.raises(WorkflowError):
        TopicPolicy(locality="nearby")


# -- build_workflow ---------------------------------------------------------------------


METHODS = [AppMethod(_noop, resource="cpu", topic="work")]
POLICIES = {"work": TopicPolicy(locality="local", threshold=1000)}


def test_unknown_config_rejected(testbed):
    with pytest.raises(WorkflowError):
        build_workflow("slurm", testbed, METHODS, POLICIES)


def test_missing_topic_policy_rejected(testbed):
    with pytest.raises(WorkflowError):
        build_workflow(
            "parsl",
            testbed,
            [AppMethod(_noop, resource="cpu", topic="unknown-topic")],
            POLICIES,
        )


def test_parsl_config_has_no_stores(testbed):
    handle = build_workflow(
        "parsl", testbed, METHODS, POLICIES, n_cpu_workers=1, n_gpu_workers=1
    )
    assert handle.stores == {}
    assert isinstance(handle.task_server, ParslTaskServer)
    assert handle.transfer_service is None


def test_parsl_redis_config_has_both_stores(testbed):
    handle = build_workflow(
        "parsl+redis",
        testbed,
        METHODS,
        {"work": TopicPolicy(locality="cross", threshold=1000)},
        n_cpu_workers=1,
        n_gpu_workers=1,
    )
    assert set(handle.stores) == {"local", "cross"}
    assert handle.stores["cross"].connector.kind == "redis"
    assert handle.stores["local"].connector.kind == "file"


def test_funcx_globus_config_structure(testbed):
    handle = build_workflow(
        "funcx+globus",
        testbed,
        METHODS,
        {"work": TopicPolicy(locality="cross", threshold=1000)},
        n_cpu_workers=1,
        n_gpu_workers=1,
    )
    try:
        assert isinstance(handle.task_server, FuncXTaskServer)
        assert handle.stores["cross"].connector.kind == "globus"
        assert handle.transfer_service is not None
        assert len(handle.endpoints) == 2
    finally:
        for endpoint in handle.endpoints:
            endpoint.stop()
        handle.transfer_service.stop()
        for store in handle.stores.values():
            store.close()


def test_workflow_with_batch_scheduler_queues_first(testbed):
    """Pilot-job provisioning waits in the batch queue before workers run."""
    from repro.net.clock import get_clock
    from repro.net.topology import FixedLatency

    handle = build_workflow(
        "parsl",
        testbed,
        METHODS,
        POLICIES,
        n_cpu_workers=1,
        n_gpu_workers=1,
        use_batch_scheduler=True,
        batch_queue_delay=FixedLatency(5.0),
    )
    clock = get_clock()
    start = clock.now()
    with handle:
        startup = clock.now() - start
        with at_site(testbed.theta_login):
            handle.queues.send_request("_noop", topic="work")
            result = handle.queues.get_result("work", timeout=60)
        assert result is not None and result.success
    assert startup >= 5.0  # the batch queue wait happened before work ran


@pytest.mark.parametrize("config", ["parsl", "parsl+redis", "funcx+globus"])
def test_workflow_round_trip_each_config(testbed, config):
    handle = build_workflow(
        config, testbed, METHODS, POLICIES, n_cpu_workers=1, n_gpu_workers=1,
    )
    with handle:
        with at_site(testbed.theta_login):
            handle.queues.send_request("_noop", topic="work")
            result = handle.queues.get_result("work", timeout=60)
        assert result is not None and result.success, result and result.error
