"""Tests for the surrogate fine-tuning application."""

import numpy as np
import pytest

from repro.apps.environment import register_software
from repro.apps.finetuning import (
    FineTuneConfig,
    evaluate_force_rmsd,
    infer_energies,
    pretrain_ensemble,
    run_dft,
    run_finetuning_campaign,
    run_sampling,
    train_schnet,
)
from repro.apps.finetuning.tasks import DFT_KEY
from repro.ml.schnet import RbfBasis, SchnetSurrogate
from repro.serialize import Blob
from repro.sim.datasets import DftSimulator, hydronet_like_dataset
from repro.sim.water import make_test_set, make_water_cluster


TINY = FineTuneConfig(
    n_waters=2,
    n_pretrain=60,
    target_new_structures=10,
    retrain_after=4,
    n_ensemble=2,
    audit_pool_target=3,
    uncertainty_batch=12,
    inference_batch=6,
    uncertainty_pool_size=6,
    pretrain_epochs=10,
    train_epochs=8,
    n_rbf_centers=6,
    hidden_layers=(12,),
    sampling_min_steps=4,
    sampling_max_steps=12,
    dft_duration=4.0,
    train_duration=5.0,
    inference_duration=0.5,
    sampling_duration=0.5,
    model_padding=1_000_000,
)


def test_config_validation():
    with pytest.raises(ValueError):
        FineTuneConfig(target_new_structures=0)
    with pytest.raises(ValueError):
        FineTuneConfig(sampling_min_steps=100, sampling_max_steps=10)
    with pytest.raises(ValueError):
        FineTuneConfig(n_ensemble=0)


# -- task functions ----------------------------------------------------------------


@pytest.fixture
def trained_model():
    structures, energies = hydronet_like_dataset(40, n_waters=2, seed=0)
    model = SchnetSurrogate(RbfBasis(n_centers=6), hidden=(12,), seed=0)
    model.train(structures, energies, epochs=8)
    return model


def test_run_sampling_task(trained_model):
    start = make_water_cluster(2, seed=1)
    out = run_sampling(
        trained_model,
        start,
        n_steps=8,
        temperature=100.0,
        seed=0,
        duration=0.3,
        payload_bytes=1000,
    )
    assert len(out["frames"]) >= 1
    assert out["last"] is out["frames"][-1]
    assert out["n_steps"] == 8
    assert isinstance(out["artifacts"], Blob)


def test_run_dft_task():
    register_software(DFT_KEY, DftSimulator(duration_mean=0.3, seed=0), replace=True)
    structure = make_water_cluster(2, seed=2)
    out = run_dft(structure)
    assert np.isfinite(out["energy"])
    assert out["forces"].shape == structure.positions.shape
    assert out["structure"].n_atoms == structure.n_atoms


def test_train_schnet_task(trained_model):
    structures = [make_water_cluster(2, seed=i) for i in range(8)]
    from repro.sim.water import reference_potential

    energies = np.array([reference_potential().energy(s) for s in structures])
    out = train_schnet(
        trained_model, structures, energies, duration=0.2, epochs=3, seed=0
    )
    assert out is trained_model  # same object, updated weights


def test_infer_energies_task(trained_model):
    structures = [make_water_cluster(2, seed=i) for i in range(5)]
    out = infer_energies(trained_model, structures, duration=0.1, payload_bytes=100)
    assert out["energies"].shape == (5,)


# -- pretraining / evaluation --------------------------------------------------------------


def test_pretrain_ensemble_builds_members():
    structures, energies = hydronet_like_dataset(40, n_waters=2, seed=1)
    models = pretrain_ensemble(TINY, structures, energies, seed=0)
    assert len(models) == TINY.n_ensemble
    predictions = [m.predict(structures[:5]) for m in models]
    assert not np.allclose(predictions[0], predictions[1])


def test_evaluate_force_rmsd_returns_finite():
    structures, energies = hydronet_like_dataset(30, n_waters=2, seed=2)
    models = pretrain_ensemble(TINY, structures, energies, seed=0)
    test_set = make_test_set(n_trajectories=1, n_steps=4, n_waters=2, seed=1)
    rmsd, energy_rmse = evaluate_force_rmsd(models, test_set)
    assert np.isfinite(rmsd) and rmsd > 0
    assert np.isfinite(energy_rmse)


# -- campaign ------------------------------------------------------------------------------------


def test_tiny_finetuning_campaign():
    outcome = run_finetuning_campaign(
        "funcx+globus",
        TINY,
        seed=4,
        n_cpu_workers=3,
        n_gpu_workers=3,
        join_timeout=180,
    )
    assert outcome.n_new_structures >= TINY.target_new_structures
    assert outcome.n_failures == 0
    assert len(outcome.results["simulate"]) >= TINY.target_new_structures
    assert len(outcome.results["sample"]) >= 1
    assert len(outcome.results["train"]) >= TINY.n_ensemble
    # Fine-tuning on reference data must improve energy accuracy.
    assert outcome.energy_rmse_after < outcome.energy_rmse_before
