"""Tests for the molecular design application (config, tasks, campaign)."""

import numpy as np
import pytest

from repro.apps.environment import register_software
from repro.apps.moldesign import (
    MolDesignConfig,
    run_inference,
    run_moldesign_campaign,
    simulate_molecule,
    train_model,
)
from repro.apps.moldesign.tasks import LIBRARY_KEY, SIMULATOR_KEY
from repro.ml.mpnn import MpnnSurrogate
from repro.serialize import Blob
from repro.sim.chemistry import MoleculeLibrary, TightBindingSimulator


TINY = MolDesignConfig(
    n_molecules=300,
    n_initial=8,
    max_simulations=36,
    retrain_after=8,
    n_ensemble=2,
    inference_chunks=2,
    sim_duration=6.0,
    train_duration=10.0,
    inference_duration_per_model=10.0,
    inference_input_padding=50_000_000,
    inference_output_padding=10_000_000,
    train_epochs=10,
)


def test_config_validation():
    with pytest.raises(ValueError):
        MolDesignConfig(n_initial=100, max_simulations=50)
    with pytest.raises(ValueError):
        MolDesignConfig(threshold_quantile=1.5)
    with pytest.raises(ValueError):
        MolDesignConfig(retrain_after=0)


def test_config_chunk_duration():
    config = MolDesignConfig(inference_duration_per_model=100.0, inference_chunks=4)
    assert config.inference_chunk_duration == 25.0


# -- task functions --------------------------------------------------------------


@pytest.fixture
def installed_software():
    library = MoleculeLibrary(100, seed=0)
    simulator = TightBindingSimulator(library, duration_mean=0.5, seed=0)
    register_software(LIBRARY_KEY, library, replace=True)
    register_software(SIMULATOR_KEY, simulator, replace=True)
    return library


def test_simulate_molecule_task(installed_software):
    record = simulate_molecule(5)
    assert record["molecule_index"] == 5
    assert abs(record["ip"] - installed_software.true_ip(5)) < 0.5
    assert isinstance(record["artifacts"], Blob)


def test_train_model_task(installed_software):
    library = installed_software
    model = MpnnSurrogate(library.n_features, hidden=(16,), seed=0)
    x = library.fingerprints(list(range(40)))
    y = library.true_ips(list(range(40)))
    trained = train_model(model, x, y, duration=0.5, epochs=10, seed=0)
    pred = trained.predict(x)
    assert np.corrcoef(pred, y)[0, 1] > 0.3


def test_run_inference_task(installed_software):
    library = installed_software
    model = MpnnSurrogate(library.n_features, hidden=(16,), seed=0)
    model.train(library.fingerprints(), library.true_ips(), epochs=5)
    out = run_inference(
        model,
        np.arange(10),
        Blob(1000),
        duration=0.2,
        output_padding=5000,
    )
    assert out["scores"].shape == (10,)
    assert out["artifacts"].nbytes == 5000
    np.testing.assert_array_equal(out["chunk_indices"], np.arange(10))


# -- campaign ----------------------------------------------------------------------------


@pytest.mark.parametrize("workflow", ["parsl+redis", "funcx+globus"])
def test_tiny_campaign_completes(workflow):
    outcome = run_moldesign_campaign(
        workflow,
        TINY,
        seed=3,
        n_cpu_workers=3,
        n_gpu_workers=3,
        join_timeout=120,
    )
    assert outcome.n_simulated == TINY.max_simulations
    assert outcome.n_failures == 0
    assert len(outcome.results["simulate"]) == TINY.max_simulations
    assert outcome.found_timeline[-1][1] == outcome.n_found
    # Reordering happened at least once -> a makespan was recorded.
    assert len(outcome.ml_makespans) >= 1
    assert len(outcome.results["train"]) >= TINY.n_ensemble
    assert (
        len(outcome.results["infer"]) >= TINY.n_ensemble * TINY.inference_chunks
    )
    # Ledger sanity on a simulation result.
    sim = outcome.results["simulate"][0]
    assert sim.task_lifetime > sim.time_running > 0
    assert outcome.cpu_utilization > 0.5


def test_campaign_active_learning_beats_random():
    """After reordering, the steered campaign should find more hits than the
    expected random-draw count."""
    outcome = run_moldesign_campaign(
        "parsl+redis",
        TINY,
        seed=7,
        n_cpu_workers=3,
        n_gpu_workers=3,
        join_timeout=120,
    )
    random_expectation = TINY.max_simulations * TINY.threshold_quantile
    assert outcome.n_found > random_expectation
