"""Unit tests for the application Thinkers' steering logic.

These construct the thinkers directly and drive their result processors
with fabricated Results — no workflow stack — so the policy decisions
(queue ordering, retrain triggers, pool management, batch bookkeeping) are
tested in isolation from the simulator's timing.
"""

import numpy as np
import pytest

from repro.apps.finetuning.config import FineTuneConfig
from repro.apps.finetuning.thinker import FineTuneThinker
from repro.apps.moldesign.config import MolDesignConfig
from repro.apps.moldesign.thinker import MolDesignThinker
from repro.core.queues import ColmenaQueues
from repro.core.result import Result
from repro.ml.schnet import RbfBasis, SchnetSurrogate
from repro.net.kvstore import KVServer
from repro.sim.chemistry import MoleculeLibrary
from repro.sim.water import make_water_cluster


def call(bound_method, *args):
    """Invoke the undecorated body of an agent-wrapped method."""
    return bound_method.__wrapped__(bound_method.__self__, *args)


def make_queues(testbed):
    return ColmenaQueues(
        KVServer(testbed.theta_login),
        testbed.network,
        topics=["simulate", "train", "infer", "sample"],
    )


def make_md_thinker(testbed, **overrides):
    defaults = dict(
        n_molecules=50,
        n_initial=4,
        max_simulations=10,
        retrain_after=4,
        n_ensemble=2,
        inference_chunks=2,
    )
    defaults.update(overrides)
    config = MolDesignConfig(**defaults)
    library = MoleculeLibrary(config.n_molecules, seed=0)
    return MolDesignThinker(
        make_queues(testbed),
        testbed.theta_login,
        config,
        library,
        n_cpu_slots=2,
    )


def sim_result(thinker, molecule, ip=15.0, wall=60.0, success=True):
    result = Result(method="simulate_molecule", topic="simulate")
    if success:
        result.set_success(
            {"molecule_index": molecule, "ip": ip, "wall_time": wall, "artifacts": None}
        )
    else:
        result.set_failure("boom")
    result.mark_created()
    result.mark_client_result_received()
    return result


# -- molecular design --------------------------------------------------------


def test_md_next_molecule_skips_known_and_inflight(testbed):
    thinker = make_md_thinker(testbed)
    first = thinker._next_molecule()
    thinker._in_flight.add(first)
    second = thinker._next_molecule()
    assert second != first
    thinker.database[second] = 12.0
    # Reset cursor: both should now be skipped.
    thinker._cursor = 0
    thinker._ranked = [first, second, 99]
    assert thinker._next_molecule() == 99


def test_md_next_molecule_exhausted(testbed):
    thinker = make_md_thinker(testbed)
    thinker._ranked = [1]
    thinker._cursor = 0
    thinker.database[1] = 10.0
    assert thinker._next_molecule() is None


def test_md_found_counting_uses_threshold(testbed):
    thinker = make_md_thinker(testbed)
    above = thinker.threshold + 1.0
    below = thinker.threshold - 1.0
    thinker.resources.acquire("simulation", 2, timeout=1)
    call(thinker.process_simulation, sim_result(thinker, 1, ip=above))
    call(thinker.process_simulation, sim_result(thinker, 2, ip=below))
    assert thinker.n_found == 1
    assert thinker.found_timeline[-1][1] == 1
    # CPU time accumulated on the timeline x-axis.
    assert thinker.found_timeline[-1][0] == pytest.approx(120.0)


def test_md_retrain_triggers_after_quota(testbed):
    thinker = make_md_thinker(testbed, n_initial=2, retrain_after=2)
    thinker.resources.acquire("simulation", 2, timeout=1)
    call(thinker.process_simulation, sim_result(thinker, 1))
    assert not thinker.event("retrain").is_set()
    thinker.resources.acquire("simulation", 1, timeout=1)
    call(thinker.process_simulation, sim_result(thinker, 2))
    assert thinker.event("retrain").is_set()
    assert thinker._retraining
    assert thinker._batch_id == 1


def test_md_no_retrain_while_one_in_flight(testbed):
    thinker = make_md_thinker(testbed, n_initial=2, retrain_after=2)
    thinker._retraining = True
    for molecule in (1, 2, 3, 4):
        thinker.resources.acquire("simulation", 1, timeout=1)
        call(thinker.process_simulation, sim_result(thinker, molecule))
    assert thinker._batch_id == 0  # suppressed while retraining


def test_md_failure_releases_slot_without_counting(testbed):
    thinker = make_md_thinker(testbed)
    thinker.resources.acquire("simulation", 1, timeout=1)
    call(thinker.process_simulation, sim_result(thinker, 1, success=False))
    assert len(thinker.task_failures) == 1
    assert thinker._sims_completed == 0
    assert thinker.resources.available("simulation") == 2  # slot returned


def test_md_done_at_budget(testbed):
    thinker = make_md_thinker(testbed, n_initial=2, max_simulations=3, retrain_after=50)
    for molecule in (1, 2, 3):
        thinker.resources.acquire("simulation", 1, timeout=1)
        call(thinker.process_simulation, sim_result(thinker, molecule))
    assert thinker.done.is_set()


def test_md_inference_reorders_queue(testbed):
    thinker = make_md_thinker(testbed, n_ensemble=1, inference_chunks=1)
    thinker._batch_id = 1
    thinker._retraining = True
    thinker._batch_scores = np.full((1, len(thinker.library)), np.nan)
    thinker._batch_chunks_received = 0
    thinker._ml_start = 0.0
    scores = np.linspace(0.0, 1.0, len(thinker.library))
    result = Result(
        method="run_inference",
        topic="infer",
        task_info={"batch": 1, "member": 0, "chunk": 0},
    )
    result.set_success(
        {"chunk_indices": np.arange(len(thinker.library)), "scores": scores,
         "artifacts": None}
    )
    result.mark_created()
    call(thinker.process_inference, result)
    # Highest-scoring molecule first after the UCB reorder.
    assert thinker._ranked[0] == len(thinker.library) - 1
    assert not thinker._retraining
    assert len(thinker.ml_makespans) == 1


def test_md_stale_batch_results_ignored(testbed):
    thinker = make_md_thinker(testbed)
    thinker._batch_id = 2
    result = Result(
        method="run_inference", topic="infer",
        task_info={"batch": 1, "member": 0, "chunk": 0},
    )
    result.set_success({"chunk_indices": np.array([0]), "scores": np.array([1.0]),
                        "artifacts": None})
    call(thinker.process_inference, result)  # no crash, no state change
    assert thinker._batch_scores is None


# -- fine-tuning -------------------------------------------------------------------


def make_ft_thinker(testbed, **overrides):
    defaults = dict(
        n_waters=2,
        n_pretrain=10,
        target_new_structures=6,
        retrain_after=2,
        n_ensemble=2,
        uncertainty_batch=4,
        inference_batch=2,
        uncertainty_pool_size=2,
        n_rbf_centers=6,
        hidden_layers=(8,),
    )
    defaults.update(overrides)
    config = FineTuneConfig(**defaults)
    models = [
        SchnetSurrogate(RbfBasis(n_centers=6), hidden=(8,), seed=i)
        for i in range(config.n_ensemble)
    ]
    return FineTuneThinker(
        make_queues(testbed),
        testbed.theta_login,
        config,
        models,
        n_cpu_slots=4,
    )


def dft_result(structure, energy=1.0):
    result = Result(method="run_dft", topic="simulate")
    result.set_success(
        {"structure": structure, "energy": energy,
         "forces": np.zeros_like(structure.positions), "wall_time": 360.0,
         "artifacts": None}
    )
    result.mark_created()
    result.mark_client_result_received()
    return result


def test_ft_requires_matching_ensemble(testbed):
    config = FineTuneConfig(n_ensemble=3)
    with pytest.raises(ValueError):
        FineTuneThinker(
            make_queues(testbed), testbed.theta_login, config, [], n_cpu_slots=2
        )


def test_ft_retrain_trigger_and_done(testbed):
    thinker = make_ft_thinker(testbed, target_new_structures=4, retrain_after=2)
    structures = [make_water_cluster(2, seed=i) for i in range(4)]
    for index, structure in enumerate(structures):
        thinker.resources.acquire("simulate", 1, timeout=1)
        call(thinker.process_simulation, dft_result(structure, energy=float(index)))
    assert thinker._train_batch >= 1
    assert thinker.event("retrain").is_set()
    assert thinker.done.is_set()
    assert len(thinker.new_structures) == 4


def test_ft_sampling_feeds_audit_pool_and_buffer(testbed):
    thinker = make_ft_thinker(testbed)
    frames = [make_water_cluster(2, seed=i) for i in range(3)]
    result = Result(method="run_sampling", topic="sample")
    result.set_success({"frames": frames, "last": frames[-1], "n_steps": 8,
                        "artifacts": None})
    result.mark_created()
    thinker.resources.acquire("sample", 1, timeout=1)
    call(thinker.process_sampling, result)
    assert len(thinker.audit_pool) == 1
    assert thinker.audit_pool[0] is frames[-1]


def test_ft_uncertainty_round_ranks_by_variance(testbed):
    thinker = make_ft_thinker(testbed, uncertainty_batch=2, inference_batch=2,
                              uncertainty_pool_size=1)
    structures = [make_water_cluster(2, seed=i) for i in range(2)]
    thinker._rank_round = 1
    thinker._round_structures = structures
    thinker._round_energies = {}
    thinker._round_pending = 2
    for member, energies in enumerate(([1.0, 5.0], [1.0, -5.0])):
        result = Result(
            method="infer_energies", topic="infer",
            task_info={"round": 1, "member": member, "chunk": 0},
        )
        result.set_success({"energies": np.array(energies), "artifacts": None})
        result.mark_created()
        call(thinker.process_inference, result)
    # Structure 1 has wildly disagreeing predictions -> highest variance.
    assert thinker.uncertainty_pool == [structures[1]]


def test_ft_simulation_prefers_uncertainty_pool(testbed):
    thinker = make_ft_thinker(testbed)
    marked = make_water_cluster(2, seed=99)
    thinker.uncertainty_pool = [marked]
    thinker.resources.acquire("simulate", 1, timeout=1)
    from repro.net.context import at_site

    with at_site(testbed.theta_login):
        call(thinker.submit_simulation)
    task = thinker.queues.get_task(timeout=5)
    assert task.method == "run_dft"
    assert np.allclose(task.args[0].positions, marked.positions)
    assert thinker.uncertainty_pool == []


def test_ft_training_updates_member_and_resets_ref(testbed):
    thinker = make_ft_thinker(testbed)
    thinker._model_refs[0] = object()  # pretend a stale proxy exists
    new_model = SchnetSurrogate(RbfBasis(n_centers=6), hidden=(8,), seed=42)
    result = Result(
        method="train_schnet", topic="train", task_info={"batch": 1, "member": 0}
    )
    result.set_success(new_model)
    result.mark_created()
    call(thinker.process_training, result)
    assert thinker.models[0] is not None
    assert thinker._model_refs[0] is None  # next submission re-proxies
