"""Batched WAL records stay per-task-replayable across a crash."""

from __future__ import annotations

import pytest

from repro.durable import FileJournalBackend, Journal, recover_cloud
from repro.faas.auth import SCOPE_COMPUTE, AuthServer
from repro.faas.cloud import FaasCloud, TaskStatus, TaskSubmission
from repro.net.fs import FileSystem
from repro.serialize import deserialize, serialize


def _square(x):
    return x * x


class Rig:
    def __init__(self, testbed):
        self.testbed = testbed
        self.auth = AuthServer()
        identity = self.auth.register_identity("u", "anl")
        self.token = self.auth.issue_token(identity, {SCOPE_COMPUTE})
        self.journal = Journal(FileJournalBackend(FileSystem("wal", op_latency=1e-4), "cloud"))
        self.cloud = FaasCloud(
            testbed.faas_cloud,
            testbed.network,
            self.auth,
            testbed.constants,
            journal=self.journal,
        )
        self.endpoint_id = self.cloud.register_endpoint(
            self.token, "theta", testbed.theta_compute
        )
        self.func_id = self.cloud.register_function(self.token, serialize(_square))

    def submit_batch(self, values, client="client-1"):
        return self.cloud.submit_batch(
            self.token,
            client,
            [
                TaskSubmission(
                    func_id=self.func_id,
                    endpoint_id=self.endpoint_id,
                    args_payload=serialize(((value,), {})),
                )
                for value in values
            ],
        )

    def crash(self) -> FaasCloud:
        fresh = FaasCloud(
            self.testbed.faas_cloud,
            self.testbed.network,
            self.auth,
            self.testbed.constants,
            bus=self.cloud.bus,
            completed=self.cloud._completed,
            journal=self.journal,
        )
        self.cloud = fresh
        return fresh


@pytest.fixture
def rig(testbed):
    return Rig(testbed)


def test_submit_batch_record_replays_every_member(rig):
    """One WAL append covered the whole batch; a crash before any dispatch
    fans it back out into every member task, queued and WAITING."""
    task_ids = rig.submit_batch([2, 3, 4])
    fresh = rig.crash()
    report = recover_cloud(fresh)
    assert report.replayed >= 3
    assert report.deduped == 0
    for task_id in task_ids:
        record = fresh.task(task_id)
        assert record.status is TaskStatus.WAITING
        args = fresh.store.read(record.args_locator)
        # The borrowed argument bytes were journaled and adopted verbatim.
        assert deserialize(args)[0][0] in (2, 3, 4)
    assert fresh.queue_depth(rig.endpoint_id) == 3


def test_mid_batch_dispatch_crash_releases_exactly_once(rig):
    """A batch partially dispatched at the crash: the leased members are
    re-leased (front of queue), the rest stay WAITING — nothing double."""
    task_ids = rig.submit_batch([5, 6, 7])
    dispatched = rig.cloud.fetch_tasks(rig.token, rig.endpoint_id, 2, timeout=1.0)
    assert [d.task_id for d in dispatched] == task_ids[:2]
    fresh = rig.crash()
    report = recover_cloud(fresh)
    assert report.released == 2
    redelivered = fresh.fetch_tasks(rig.token, rig.endpoint_id, 10, timeout=1.0)
    assert sorted(d.task_id for d in redelivered) == sorted(task_ids)


def test_result_batch_record_replays_and_dedupes(rig):
    """A batched uplink's single WAL record replays each result once; the
    tasks come back terminal with readable payloads and one notification
    each."""
    task_ids = rig.submit_batch([3, 4])
    rig.cloud.fetch_tasks(rig.token, rig.endpoint_id, 2, timeout=1.0)
    outcomes = rig.cloud.report_results(
        rig.token,
        rig.endpoint_id,
        [
            (task_ids[0], True, serialize({"success": True, "value": 9})),
            (task_ids[1], True, serialize({"success": True, "value": 16})),
        ],
    )
    assert outcomes == [None, None]
    fresh = rig.crash()
    report = recover_cloud(fresh)
    assert report.renotified == 2
    assert report.deduped == 0
    for task_id, expected in zip(task_ids, (9, 16)):
        record = fresh.task(task_id)
        assert record.status is TaskStatus.SUCCESS
        _, payload = fresh.get_result_payload(rig.token, task_id)
        assert deserialize(payload)["value"] == expected
    # A duplicate batched report after recovery is dropped per member by
    # the ledger re-check, exactly like its singular form.
    dup = fresh.report_results(
        fresh_token := rig.token,
        rig.endpoint_id,
        [(task_ids[0], True, serialize({"success": True, "value": 999}))],
    )
    assert dup == [None]
    _, payload = fresh.get_result_payload(fresh_token, task_ids[0])
    assert deserialize(payload)["value"] == 9
