"""The adaptive batch accumulator: flush triggers, holds, and no-loss."""

from __future__ import annotations

from hypothesis import given
from hypothesis import strategies as st

from repro.batch import BatchAccumulator, BatchPolicy
from repro.net.clock import get_clock


def test_size_trigger_flushes_inline():
    acc = BatchAccumulator(BatchPolicy(max_batch=3, flush_deadline=1.0))
    assert acc.add("k", "a", 10) == (None, acc.policy.min_hold, 0)
    assert acc.add("k", "b", 10)[0] is None
    ready, hold, _gen = acc.add("k", "c", 10)
    assert ready == ["a", "b", "c"]
    assert hold is None
    assert acc.pending_count() == 0


def test_bytes_trigger_flushes_inline():
    acc = BatchAccumulator(BatchPolicy(max_batch=100, max_bytes=100))
    assert acc.add("k", "a", 60)[0] is None
    ready, _, _ = acc.add("k", "b", 60)
    assert ready == ["a", "b"]


def test_only_first_entry_arms_a_hold():
    acc = BatchAccumulator(BatchPolicy(max_batch=10))
    _, hold1, _ = acc.add("k", "a", 1)
    _, hold2, _ = acc.add("k", "b", 1)
    assert hold1 is not None
    assert hold2 is None


def test_idle_batcher_collapses_hold_to_min():
    policy = BatchPolicy(max_batch=32, flush_deadline=0.05, min_hold=0.002)
    acc = BatchAccumulator(policy)
    # No arrival history (or sparse arrivals): a lone task is released
    # after min_hold, never parked for the full deadline.
    _, hold, _ = acc.add("k", "a", 1)
    assert hold == policy.min_hold


def test_storm_stretches_hold_toward_deadline_but_never_past():
    policy = BatchPolicy(max_batch=32, flush_deadline=0.05, min_hold=0.002)
    acc = BatchAccumulator(policy)
    clock = get_clock()
    # A tight arrival train: EWMA gap ~1 ms << flush_deadline.
    for i in range(8):
        acc.add("k", i, 1)
        clock.sleep(0.001)
    acc.take("k")
    hold = acc.hold_for()
    assert policy.min_hold < hold <= policy.flush_deadline


def test_take_with_stale_generation_is_a_noop():
    acc = BatchAccumulator(BatchPolicy(max_batch=2))
    _, _, gen = acc.add("k", "a", 1)
    ready, _, _ = acc.add("k", "b", 1)  # size flush bumps the generation
    assert ready == ["a", "b"]
    acc.add("k", "c", 1)  # a fresh batch under the same key
    assert acc.take("k", generation=gen) == []  # the timer came too late
    assert acc.take("k") == ["c"]


def test_take_all_drains_every_key():
    acc = BatchAccumulator(BatchPolicy(max_batch=100))
    acc.add("k1", "a", 1)
    acc.add("k2", "b", 1)
    drained = dict(acc.take_all())
    assert drained == {"k1": ["a"], "k2": ["b"]}
    assert acc.pending_count() == 0


@given(
    adds=st.lists(
        st.tuples(st.sampled_from(["k1", "k2", "k3"]), st.integers(1, 200)),
        max_size=60,
    ),
    max_batch=st.integers(1, 8),
    max_bytes=st.integers(50, 500),
)
def test_no_item_is_lost_or_duplicated(adds, max_batch, max_bytes):
    """Every added item comes out of exactly one flush — inline, deadline
    take, or the final drain — no matter how the triggers interleave."""
    acc = BatchAccumulator(
        BatchPolicy(max_batch=max_batch, max_bytes=max_bytes, flush_deadline=1.0)
    )
    flushed: list[object] = []
    for index, (key, nbytes) in enumerate(adds):
        item = (index, key)
        ready, _hold, _gen = acc.add(key, item, nbytes)
        if ready is not None:
            flushed.extend(ready)
    for _key, items in acc.take_all():
        flushed.extend(items)
    assert sorted(flushed) == [(i, k) for i, (k, _) in enumerate(adds)]
