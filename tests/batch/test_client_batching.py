"""Client-side adaptive batching: amortization, bounded latency, splits."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.batch import BatchPolicy
from repro.chaos.plan import FaultInjector, FaultPlan, FaultSpec, set_injector
from repro.chaos.policy import RetryPolicy
from repro.exceptions import PayloadTooLargeError
from repro.faas import (
    SCOPE_COMPUTE,
    AuthServer,
    FaasClient,
    FaasCloud,
    FaasEndpoint,
)
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.observe import MetricsRegistry, set_metrics
from repro.resilience.hedge import HedgePolicy
from repro.resources import WorkerPool


def _add(a, b):
    return a + b


@pytest.fixture
def rig(testbed):
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 4, name="batch-pool")
    endpoint = FaasEndpoint(
        "theta", cloud, token, testbed.theta_login, pool, uplink_batching=True
    ).start()
    yield testbed, cloud, token, endpoint
    endpoint.stop()


def _batched_client(testbed, cloud, token, **kwargs):
    policy = kwargs.pop(
        "policy", BatchPolicy(max_batch=8, flush_deadline=0.05, min_hold=0.002)
    )
    return FaasClient(
        cloud, token, site=testbed.theta_login, batch=policy, **kwargs
    )


def test_batched_storm_amortizes_round_trips(rig):
    testbed, cloud, token, endpoint = rig
    metrics = MetricsRegistry()
    set_metrics(metrics)
    client = _batched_client(testbed, cloud, token)
    try:
        with at_site(testbed.theta_login):
            futures = [
                client.run(_add, endpoint.endpoint_id, i, b=1) for i in range(24)
            ]
        assert [f.result(timeout=60) for f in futures] == list(range(1, 25))
    finally:
        client.close()
    # 24 tasks, max_batch=8: the submit hot path paid ~3 API round trips,
    # not 24 — the counter counts per *call*, not per task.
    assert metrics.counter_total("faas.api_calls") <= 6
    assert metrics.counter_total("cloud.batch_submits") >= 3
    assert metrics.counter_total("cloud.submits") == 24


def test_lone_task_latency_stays_bounded(rig):
    """Regression for the adaptive hold: a single task under an idle
    batcher must not be parked for the full flush deadline — it completes
    within ``flush_deadline`` + epsilon of the unbatched baseline."""
    testbed, cloud, token, endpoint = rig
    clock = get_clock()
    policy = BatchPolicy(max_batch=64, flush_deadline=0.05, min_hold=0.002)

    plain = FaasClient(cloud, token, site=testbed.theta_login)
    try:
        with at_site(testbed.theta_login):
            start = clock.now()
            plain.run(_add, endpoint.endpoint_id, 1, b=1).result(timeout=60)
            baseline = clock.now() - start
    finally:
        plain.close()

    batched = _batched_client(testbed, cloud, token, policy=policy)
    try:
        with at_site(testbed.theta_login):
            start = clock.now()
            batched.run(_add, endpoint.endpoint_id, 2, b=2).result(timeout=60)
            lone = clock.now() - start
    finally:
        batched.close()
    # Epsilon absorbs the sampled network latencies; the bound it protects
    # is the adaptive hold collapsing to min_hold when the batcher is idle.
    assert lone <= baseline + policy.flush_deadline + 0.25


def test_rejected_members_split_back_into_singles(rig):
    """A submit-time fault rejects every batch member once; each re-enters
    the retry path as a single and completes under its original future."""
    testbed, cloud, token, endpoint = rig
    metrics = MetricsRegistry()
    set_metrics(metrics)
    injector = FaultInjector(
        FaultPlan.build(
            0,
            (
                FaultSpec(
                    "cloud.submit", "payload_cap", rate=1.0, match={"attempt": 0}
                ),
            ),
        )
    )
    set_injector(injector)
    client = _batched_client(
        testbed,
        cloud,
        token,
        retry_policy=RetryPolicy(max_attempts=4, base_delay=0.05, max_delay=0.5),
    )
    try:
        with at_site(testbed.theta_login):
            futures = [
                client.run(
                    _add, endpoint.endpoint_id, i, b=10, _deadline=120.0
                )
                for i in range(6)
            ]
            client.flush_batches()
        assert [f.result(timeout=60) for f in futures] == [
            i + 10 for i in range(6)
        ]
    finally:
        client.close()
        set_injector(None)
    assert metrics.counter_total("client.batch_splits") == 6
    assert metrics.counter_total("client.retries") == 6
    # Satellite regression: a resubmission reuses the serialized payload —
    # the skip counter moves in lockstep with the retries.
    assert metrics.counter_total("client.serialize_skipped") == 6
    # Per-task metadata survived the split: the (retried) records carry
    # the original tenant and absolute deadline.
    terminal = [r for r in cloud.task_records() if r.status.terminal]
    assert len(terminal) == 6
    assert all(r.tenant == "default" for r in terminal)
    assert all(r.deadline_at is not None for r in terminal)


@settings(max_examples=15, deadline=None)
@given(mask=st.lists(st.booleans(), min_size=1, max_size=12))
def test_split_property_no_member_lost(rig, mask):
    """Property: whatever subset of a batch the cloud rejects, every member
    is either registered in flight (accepted) or handed to the single-task
    resubmit path (rejected) — none vanish, and each keeps its own
    deadline, prefetch hints, and hedge policy."""
    testbed, cloud, token, endpoint = rig
    client = _batched_client(
        testbed,
        cloud,
        token,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.01, max_delay=0.05),
        policy=BatchPolicy(max_batch=64, flush_deadline=10.0, min_hold=10.0),
    )
    resubmitted = []
    hedge = HedgePolicy(endpoints=(endpoint.endpoint_id,))

    def fake_submit_batch(submissions):
        return [
            f"task-fake{i:08d}" if accept else PayloadTooLargeError("rejected")
            for i, accept in enumerate(mask)
        ]

    client._cloud_submit_batch = fake_submit_batch
    client._resubmit = lambda pending, attempt: resubmitted.append(pending)
    try:
        with at_site(testbed.theta_login):
            futures = [
                client.submit(
                    "func-x",
                    endpoint.endpoint_id,
                    i,
                    _deadline=500.0,
                    _prefetch_hints=(f"hint-{i}",),
                    _hedge=hedge,
                )
                for i in range(len(mask))
            ]
            client.flush_batches()
        with client._futures_lock:
            in_flight = dict(client._pending)
        accepted = [p for p in in_flight.values()]
        assert len(accepted) == sum(mask)
        assert len(resubmitted) == len(mask) - sum(mask)
        survivors = accepted + resubmitted
        assert len(survivors) == len(futures)
        for pending in survivors:
            index = int(pending.prefetch[0].split("-")[1])
            assert pending.deadline_at is not None
            assert pending.hedge_policy is hedge
            assert futures[index] is pending.future
        # Accepted members got their lazily-assigned task ids.
        for task_id, pending in in_flight.items():
            assert pending.future.task_id == task_id
    finally:
        with client._futures_lock:
            client._pending.clear()
        client.close()
