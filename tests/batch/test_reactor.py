"""The shared event-driven reactor: one timer thread per process."""

from __future__ import annotations

import threading

from repro.batch.reactor import Reactor, get_reactor, reset_reactor
from repro.net.clock import get_clock
from repro.observe import MetricsRegistry, set_metrics


def test_call_later_fires_once():
    reactor = Reactor()
    fired = threading.Event()
    reactor.call_later(0.01, fired.set)
    assert fired.wait(timeout=5.0)
    reactor.close()


def test_timers_fire_in_deadline_order():
    reactor = Reactor()
    order: list[str] = []
    done = threading.Event()
    lock = threading.Lock()

    def record(tag: str):
        with lock:
            order.append(tag)
            if len(order) == 3:
                done.set()

    # Delays far above the test time scale, so all three are registered
    # before the earliest can fire.
    reactor.call_later(6.0, lambda: record("c"))
    reactor.call_later(2.0, lambda: record("a"))
    reactor.call_later(4.0, lambda: record("b"))
    assert done.wait(timeout=5.0)
    assert order == ["a", "b", "c"]
    reactor.close()


def test_cancelled_timer_never_fires():
    reactor = Reactor()
    fired = threading.Event()
    sentinel = threading.Event()
    timer = reactor.call_later(2.0, fired.set)
    timer.cancel()
    reactor.call_later(4.0, sentinel.set)
    assert sentinel.wait(timeout=5.0)
    assert not fired.is_set()
    reactor.close()


def test_call_every_repeats_until_false():
    reactor = Reactor()
    done = threading.Event()
    count = [0]

    def tick():
        count[0] += 1
        if count[0] >= 3:
            done.set()
            return False
        return None

    reactor.call_every(0.01, tick)
    assert done.wait(timeout=5.0)
    clock = get_clock()
    clock.sleep(0.05)  # would fire again if the False return were ignored
    assert count[0] == 3
    reactor.close()


def test_callback_exception_is_counted_not_fatal():
    metrics = MetricsRegistry()
    set_metrics(metrics)
    reactor = Reactor()
    survived = threading.Event()

    def boom():
        raise RuntimeError("callback boom")

    reactor.call_later(0.01, boom)
    reactor.call_later(0.02, survived.set)
    assert survived.wait(timeout=5.0)
    assert metrics.counter_total("reactor.callback_errors") == 1
    reactor.close()


def test_process_reactor_is_a_singleton_until_reset():
    first = get_reactor()
    assert get_reactor() is first
    reset_reactor()
    second = get_reactor()
    assert second is not first
    reset_reactor()
