"""The zero-copy fast path: borrowed payloads skip the second hop."""

from __future__ import annotations

from repro.faas import SCOPE_COMPUTE, AuthServer, FaasCloud
from repro.faas.cloud import TaskSubmission
from repro.observe import MetricsRegistry, set_metrics
from repro.serialize import (
    Blob,
    borrow,
    deserialize_cost,
    serialize,
    serialize_cost,
)


def _noop():
    return None


def test_borrow_marks_without_copying():
    payload = serialize(Blob(8 * 1024))
    borrowed = borrow(payload)
    assert borrowed.borrowed
    assert borrowed.data is payload.data
    assert borrowed.nominal_size == payload.nominal_size
    assert borrow(borrowed) is borrowed  # idempotent


def test_borrowed_costs_are_zero():
    assert serialize_cost(8 * 1024) > 0.0
    assert serialize_cost(8 * 1024, borrowed=True) == 0.0
    assert deserialize_cost(8 * 1024, borrowed=True) == 0.0


def _cloud(testbed):
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    endpoint_id = cloud.register_endpoint(token, "theta", testbed.theta_compute)
    func_id = cloud.register_function(token, serialize(_noop))
    return cloud, token, endpoint_id, func_id


def test_store_tiers_borrowed_small_objects_inline(testbed):
    """A borrowed sub-20 kB payload rides the carrying message: the store
    files it inline (free) instead of paying the redis hop's second
    serialize/deserialize."""
    cloud, *_ = _cloud(testbed)
    payload = serialize(Blob(8 * 1024))  # redis band when not borrowed
    assert ":redis:" in f":{cloud.store.write(payload)}"
    assert ":inline:" in f":{cloud.store.write(borrow(payload))}"
    # Above the small-object threshold the bytes cannot ride the message;
    # borrowed or not, they take the s3 tier.
    big = serialize(Blob(64 * 1024))
    assert ":s3:" in f":{cloud.store.write(borrow(big))}"


def test_submit_batch_borrows_small_payloads(testbed):
    metrics = MetricsRegistry()
    set_metrics(metrics)
    cloud, token, endpoint_id, func_id = _cloud(testbed)
    payload = serialize(((Blob(8 * 1024),), {}))  # mid-band: redis if copied
    [task_id] = cloud.submit_batch(
        token,
        "client-1",
        [TaskSubmission(func_id=func_id, endpoint_id=endpoint_id, args_payload=payload)],
    )
    record = cloud.task(task_id)
    assert "inline:" in record.args_locator
    # The singular path is untouched: the same payload still pays redis.
    single_id = cloud.submit(token, "client-1", func_id, endpoint_id, payload)
    assert "redis:" in cloud.task(single_id).args_locator
