"""Tests for the ASCII figure renderer."""

from repro.bench.plotting import ascii_bars, ascii_timeseries


def test_timeseries_renders_shape():
    series = [(0.0, 0.0), (1.0, 5.0), (2.0, 10.0), (3.0, 2.0)]
    text = ascii_timeseries(series, title="demo", width=20, height=5, y_label="found")
    assert "demo" in text
    assert "[found]" in text
    assert "#" in text
    assert "10" in text  # the max appears on the axis


def test_timeseries_handles_flat_and_single_point():
    flat = ascii_timeseries([(0.0, 3.0), (2.0, 3.0)], width=10, height=3)
    assert "#" in flat
    single = ascii_timeseries([(1.0, 1.0)], width=10, height=3)
    assert "#" in single


def test_timeseries_empty():
    assert "(no data)" in ascii_timeseries([])


def test_bars_scale_to_peak():
    text = ascii_bars([("a", 1.0), ("bb", 4.0)], title="t", unit="s")
    lines = text.splitlines()
    assert lines[0] == "t"
    assert lines[2].count("#") > lines[1].count("#")
    assert "4s" in lines[2]


def test_bars_empty():
    assert "(no data)" in ascii_bars([])
