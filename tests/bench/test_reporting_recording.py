"""Tests for the benchmark support modules (event log, report tables)."""

import pytest

from repro.bench.recording import (
    Event,
    EventLog,
    cumulative_series,
    emit,
    get_global_log,
    running_series,
    set_global_log,
)
from repro.bench.recording import value_at
from repro.bench.reporting import Comparison, ReportTable, percentile, summarize
from repro.net.clock import get_clock


# -- event log -------------------------------------------------------------


def test_append_and_filter():
    log = EventLog()
    log.append("start", resource="a")
    log.append("start", resource="b")
    log.append("end", resource="a")
    assert len(log) == 3
    assert len(log.events("start")) == 2
    assert len(log.events("start", resource="a")) == 1
    assert log.events()[0].kind == "start"


def test_events_are_timestamped_in_order():
    log = EventLog()
    log.append("a")
    get_clock().sleep(0.5)
    log.append("b")
    events = log.events()
    assert events[1].t - events[0].t >= 0.5


def test_event_access_helpers():
    event = Event(t=1.0, kind="k", data={"x": 2})
    assert event["x"] == 2
    assert event.get("x") == 2
    assert event.get("missing", 7) == 7


def test_clear():
    log = EventLog()
    log.append("a")
    log.clear()
    assert len(log) == 0


def test_global_log_emit():
    log = EventLog()
    set_global_log(log)
    try:
        emit("thing", value=3)
        assert get_global_log() is log
        assert log.events("thing")[0]["value"] == 3
    finally:
        set_global_log(None)
    emit("ignored")  # no log installed: must be a no-op
    assert len(log.events("ignored")) == 0


def test_running_series():
    events = [
        Event(1.0, "start"),
        Event(2.0, "start"),
        Event(3.0, "end"),
        Event(4.0, "end"),
    ]
    series = running_series(events, "start", "end")
    assert series == [(1.0, 1), (2.0, 2), (3.0, 1), (4.0, 0)]


def test_cumulative_series():
    events = [
        Event(1.0, "xfer", {"bytes": 10}),
        Event(3.0, "xfer", {"bytes": 5}),
        Event(2.0, "other", {"bytes": 100}),
    ]
    series = cumulative_series(events, "xfer", "bytes")
    assert series == [(1.0, 10.0), (3.0, 15.0)]


def test_value_at():
    series = [(1.0, 10.0), (3.0, 15.0)]
    assert value_at(series, 0.5) == 0.0
    assert value_at(series, 1.5) == 10.0
    assert value_at(series, 5.0) == 15.0
    assert value_at([], 1.0) == 0.0


# -- reporting ---------------------------------------------------------------------


def test_summarize_and_percentile():
    stats = summarize([1.0, 2.0, 3.0, 4.0, 5.0])
    assert stats["count"] == 5
    assert stats["median"] == 3.0
    assert stats["mean"] == 3.0
    assert stats["p40"] == pytest.approx(2.6)
    assert stats["p60"] == pytest.approx(3.4)
    empty = summarize([])
    assert empty["count"] == 0
    assert percentile([], 0.5) != percentile([], 0.5)  # NaN
    assert percentile([7.0], 0.9) == 7.0


def test_comparison_verdicts():
    assert Comparison("a", "p", "m").verdict() == "-"
    assert Comparison("a", "p", "m", holds=True).verdict() == "OK"
    assert Comparison("a", "p", "m", holds=False).verdict() == "DIVERGES"


def test_report_table_render_and_all_hold():
    table = ReportTable("Demo")
    table.add("metric one", "10x", "12x", holds=True)
    table.add("informational", "-", "42")
    table.note("a note")
    text = table.render()
    assert "Demo" in text
    assert "metric one" in text
    assert "OK" in text
    assert "note: a note" in text
    assert table.all_hold

    table.add("bad", "yes", "no", holds=False)
    assert not table.all_hold
    assert "DIVERGES" in table.render()


def test_report_table_empty_renders():
    table = ReportTable("Empty")
    assert "Empty" in table.render()
