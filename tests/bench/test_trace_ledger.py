"""Trace spans must agree with the Result ledger they narrate.

Runs the Fig. 3 no-op cell (FuncX fabric, by-value payloads) with tracing
enabled and cross-checks span medians against the ledger-derived component
times.  The reconstructed hops (``fabric.dispatch``, ``fabric.collect``) are
built from the same timestamps, so they must match exactly; the live spans
(``task``, ``worker.execute``) are stamped by independent clock reads and
must land within ±20 %.
"""

from __future__ import annotations

import statistics

from repro.core.queues import ColmenaQueues, TopicSpec
from repro.core.task_server import FuncXTaskServer, MethodSpec
from repro.faas import SCOPE_COMPUTE, AuthServer, FaasClient, FaasCloud, FaasEndpoint
from repro.net.context import at_site
from repro.net.kvstore import KVServer
from repro.observe import MetricsRegistry, Tracer, find_orphans, set_metrics, set_tracer
from repro.resources import WorkerPool
from repro.serialize import Blob

N_TASKS = 12
PAYLOAD_BYTES = 10_000


def noop_task(payload=None):
    return None


def _run_traced_cell(testbed):
    queues = ColmenaQueues(
        KVServer(testbed.theta_login),
        testbed.network,
        topic_specs={"bench": TopicSpec("bench")},
    )
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("bench", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 1, name="trace-ledger")
    endpoint = FaasEndpoint("theta", cloud, token, testbed.theta_login, pool).start()
    client = FaasClient(cloud, token, site=testbed.theta_login)
    server = FuncXTaskServer(
        queues,
        [MethodSpec(noop_task, target=endpoint.endpoint_id)],
        testbed.theta_login,
        client,
    )
    server.start()
    results = []
    try:
        with at_site(testbed.theta_login):
            for _ in range(N_TASKS):
                queues.send_request("noop_task", args=(Blob(PAYLOAD_BYTES),), topic="bench")
                result = queues.get_result("bench", timeout=240)
                assert result is not None and result.success
                results.append(result)
            queues.send_kill_signal()
        server.join(timeout=10)
    finally:
        server.stop()
        endpoint.stop()
    return results


def _median_span(spans, name):
    durations = [s.duration for s in spans if s.name == name and s.duration is not None]
    assert durations, f"no complete {name!r} spans recorded"
    return statistics.median(durations)


def _median_ledger(results, attr):
    return statistics.median(getattr(r, attr) for r in results)


def _within(a, b, rel):
    return abs(a - b) <= rel * max(a, b)


def test_trace_medians_agree_with_result_ledger(testbed):
    tracer = Tracer()
    set_tracer(tracer)
    set_metrics(MetricsRegistry())
    results = _run_traced_cell(testbed)
    spans = tracer.spans()

    # Every task produced one trace, correlated by task id, with no orphans.
    assert len({s.trace_id for s in spans}) == N_TASKS
    assert {s.trace_id for s in spans} == {r.task_id for r in results}
    assert find_orphans(spans) == []

    # Reconstructed hops reuse the ledger's own timestamps: exact agreement.
    assert _within(
        _median_span(spans, "fabric.dispatch"),
        _median_ledger(results, "comm_server_to_worker"),
        1e-9,
    )
    assert _within(
        _median_span(spans, "fabric.collect"),
        _median_ledger(results, "comm_worker_to_server"),
        1e-9,
    )
    assert _within(
        _median_span(spans, "task"),
        _median_ledger(results, "task_lifetime"),
        1e-9,
    )

    # Live spans stamp their own clock reads around the same work: ±20 %.
    assert _within(
        _median_span(spans, "worker.execute"),
        _median_ledger(results, "time_on_worker"),
        0.20,
    )
    # worker.run is the envelope around worker.execute: it adds the
    # manager<->worker transfers and the FaaS payload (de)serialization,
    # so it must strictly contain the ledger's on-worker window.
    assert _median_span(spans, "worker.run") >= _median_ledger(
        results, "time_on_worker"
    )


def test_metrics_count_the_campaign(testbed):
    registry = MetricsRegistry()
    set_metrics(registry)
    results = _run_traced_cell(testbed)
    assert len(results) == N_TASKS
    assert registry.counter_total("queues.tasks_submitted") == N_TASKS
    assert registry.counter_total("queues.results_received") == N_TASKS
    assert registry.counter_total("server.tasks_dispatched") == N_TASKS
    assert registry.counter_total("faas.api_calls") >= N_TASKS
    assert registry.histogram("task.lifetime_s", topic="bench").count == N_TASKS
    # The poll loop was mostly idle between our sequential submissions.
    assert registry.counter_total("endpoint.polls") >= registry.counter_total(
        "endpoint.polls_empty"
    )
