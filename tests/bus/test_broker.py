"""Unit tests for the notification bus broker and consumer."""

import pytest

from repro.bus import BusConsumer, NotificationBus
from repro.chaos.policy import RetryPolicy
from repro.exceptions import SubscriptionLapsedError
from repro.net.clock import get_clock
from repro.observe import MetricsRegistry, set_metrics


@pytest.fixture
def metrics():
    registry = MetricsRegistry()
    set_metrics(registry)
    return registry


def _bus(**overrides):
    defaults = dict(
        redelivery=RetryPolicy(max_attempts=4, base_delay=0.2, max_delay=0.5),
        lease_ttl=30.0,
        window=256,
    )
    defaults.update(overrides)
    return NotificationBus(**defaults)


def test_sequence_numbers_are_per_subscriber_and_monotonic():
    bus = _bus()
    sub_a = bus.subscribe("tasks/ep", "a")
    sub_b = bus.subscribe("tasks/ep", "b")
    for payload in ("t1", "t2", "t3"):
        assert bus.publish("tasks/ep", payload) == 2  # both streams
    got_a = sub_a.receive(10, timeout=0.0)
    got_b = sub_b.receive(10, timeout=0.0)
    assert [e.seq for e in got_a] == [1, 2, 3]
    assert [e.seq for e in got_b] == [1, 2, 3]
    assert [e.payload for e in got_a] == ["t1", "t2", "t3"]


def test_cumulative_ack_prunes_the_window():
    bus = _bus()
    sub = bus.subscribe("tasks/ep", "ep")
    for payload in ("t1", "t2", "t3"):
        bus.publish("tasks/ep", payload)
    sub.receive(10, timeout=0.0)
    sub.ack(2)
    assert bus.unacked("tasks/ep", "ep") == [3]
    assert sub.acked == 2


def test_publish_before_first_subscribe_is_retained():
    bus = _bus()
    bus.register_subscriber("tasks/ep", "ep")
    bus.publish("tasks/ep", "early")
    sub = bus.subscribe("tasks/ep", "ep")
    assert [e.payload for e in sub.receive(10, timeout=0.0)] == ["early"]


def test_unacked_envelope_redelivers_after_backoff(metrics):
    bus = _bus()
    sub = bus.subscribe("tasks/ep", "ep")
    bus.publish("tasks/ep", "t1")
    first = sub.receive(10, timeout=0.0)
    assert [e.seq for e in first] == [1]
    # Not acked: nothing is due until the backoff elapses...
    assert sub.receive(10, timeout=0.0) == []
    get_clock().sleep(1.0)
    # ...then the same envelope comes around again.
    again = sub.receive(10, timeout=0.0)
    assert [e.seq for e in again] == [1]
    assert metrics.counter_total("bus.delivered") == 1
    assert metrics.counter_total("bus.redelivered") == 1


def test_resubscribe_replays_from_the_last_ack():
    bus = _bus(lease_ttl=5.0)
    sub = bus.subscribe("tasks/ep", "ep")
    bus.publish("tasks/ep", "t1")
    sub.receive(10, timeout=0.0)
    sub.ack(1)
    # The subscriber goes quiet past the lease; the next publish lapses it.
    get_clock().sleep(6.0)
    bus.publish("tasks/ep", "t2")
    bus.publish("tasks/ep", "t3")
    with pytest.raises(SubscriptionLapsedError):
        sub.receive(10, timeout=0.0)
    assert not bus.is_active("tasks/ep", "ep")
    # Resubscribing replays everything after the ack, immediately.
    sub = bus.subscribe("tasks/ep", "ep")
    assert [e.payload for e in sub.receive(10, timeout=0.0)] == ["t2", "t3"]


def test_window_overflow_lapses_and_trims(metrics):
    bus = _bus(window=4)
    bus.subscribe("tasks/ep", "ep")
    for index in range(6):
        bus.publish("tasks/ep", f"t{index}")
    # Two oldest envelopes were trimmed; the subscription was force-lapsed
    # (the poll path is responsible for the trimmed gap).
    assert bus.unacked("tasks/ep", "ep") == [3, 4, 5, 6]
    assert not bus.is_active("tasks/ep", "ep")
    assert metrics.counter_total("bus.window_trimmed") == 2


def test_overflow_trim_does_not_wedge_cumulative_acks(metrics):
    """A window trim advances the broker-side ack past the discarded seqs,
    and the consumer adopts that frontier on resubscribe — so acks keep
    flowing, the window drains, and overflow does not recur forever."""
    bus = _bus(window=4)
    consumer = BusConsumer(bus, "tasks/ep", "ep", role="endpoint", max_batch=10)
    for index in range(6):
        bus.publish("tasks/ep", f"t{index}")
    # Seqs 1-2 were trimmed and the subscription force-lapsed.
    with pytest.raises(SubscriptionLapsedError):
        consumer.receive(timeout=0.0)
    consumer.resubscribe()
    for envelope in consumer.receive(timeout=0.0):
        consumer.done(envelope)
    # The contiguous frontier crossed the trimmed gap: everything is acked.
    assert bus.unacked("tasks/ep", "ep") == []
    # The window is empty again, so further publishes do not re-trim.
    bus.publish("tasks/ep", "t6")
    assert metrics.counter_total("bus.window_trimmed") == 2
    (envelope,) = consumer.receive(timeout=0.0)
    assert envelope.payload == "t6"


def test_fresh_consumer_adopts_broker_ack_after_trim():
    """A consumer built over pre-existing subscriber state (agent restart)
    starts its frontier at the broker's cumulative ack, not at zero."""
    bus = _bus(window=2)
    bus.register_subscriber("tasks/ep", "ep")
    for index in range(5):
        bus.publish("tasks/ep", f"t{index}")
    consumer = BusConsumer(bus, "tasks/ep", "ep", role="endpoint", max_batch=10)
    for envelope in consumer.receive(timeout=0.0):
        consumer.done(envelope)
    assert bus.unacked("tasks/ep", "ep") == []


def test_close_discards_the_window():
    bus = _bus()
    sub = bus.subscribe("tasks/ep", "ep")
    bus.publish("tasks/ep", "t1")
    sub.close()
    assert bus.unacked("tasks/ep", "ep") == []
    with pytest.raises(SubscriptionLapsedError):
        sub.receive(10, timeout=0.0)


def test_consumer_acks_contiguous_prefix_and_drops_duplicates(metrics):
    bus = _bus()
    consumer = BusConsumer(bus, "tasks/ep", "ep", role="endpoint")
    bus.publish("tasks/ep", "t1")
    bus.publish("tasks/ep", "t2")
    e1, e2 = consumer.receive(timeout=0.0)
    # Processing out of order: seq 2 alone cannot be acked (seq 1 is still
    # outstanding), so the broker redelivers it — and the consumer, which
    # already processed it, drops the duplicate.
    consumer.done(e2)
    assert bus.unacked("tasks/ep", "ep") == [1, 2]
    get_clock().sleep(1.0)
    # Both redeliver: seq 1 (never processed) comes back — that is the
    # at-least-once contract — while processed seq 2 is suppressed.
    assert [e.seq for e in consumer.receive(timeout=0.0)] == [1]
    assert metrics.counter_total("bus.duplicates_dropped") == 1
    consumer.done(e1)  # completes the prefix: cumulative ack covers both
    assert bus.unacked("tasks/ep", "ep") == []


def test_consumer_resubscribe_after_lapse(metrics):
    bus = _bus(lease_ttl=5.0)
    consumer = BusConsumer(bus, "results/c", "c", role="client")
    get_clock().sleep(6.0)
    bus.publish("results/c", "t1")
    with pytest.raises(SubscriptionLapsedError):
        consumer.receive(timeout=0.0)
    consumer.resubscribe()
    (envelope,) = consumer.receive(timeout=0.0)
    assert envelope.payload == "t1"
    consumer.done(envelope)
    assert bus.unacked("results/c", "c") == []
    assert metrics.counter_total("bus.resubscribes") == 1


def test_notify_latency_histogram_is_recorded(metrics):
    bus = _bus()
    consumer = BusConsumer(bus, "results/c", "c", role="client")
    bus.publish("results/c", "t1")
    get_clock().sleep(0.5)
    (envelope,) = consumer.receive(timeout=0.0)
    consumer.done(envelope)
    histograms = [
        histogram
        for name, _labels, histogram in metrics.histograms()
        if name == "bus.notify_latency_s"
    ]
    assert len(histograms) == 1 and histograms[0].count == 1
    assert histograms[0].values()[0] >= 0.5


def test_bus_rejects_degenerate_parameters():
    with pytest.raises(ValueError):
        NotificationBus(lease_ttl=0.0)
    with pytest.raises(ValueError):
        NotificationBus(window=0)
