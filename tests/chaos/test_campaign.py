"""The chaos campaign harness itself: cells pass, ledgers are deterministic."""

from __future__ import annotations

import pytest

from repro.chaos.campaign import (
    CONFIGS,
    FAULT_MODES,
    fault_specs,
    render_results,
    run_campaign,
    run_cell,
)


def test_fault_specs_cover_every_mode():
    for mode in FAULT_MODES:
        specs = fault_specs(mode)
        assert specs, mode
    assert fault_specs("none") == ()
    with pytest.raises(ValueError, match="unknown fault mode"):
        fault_specs("meteor_strike")


def test_worker_exception_cell_passes_and_reconciles():
    result = run_cell("worker_exception", "faas-file", seed=0, n_tasks=4)
    assert result.passed, result.failures
    assert result.fires > 0  # the cell actually injected something
    assert result.counters["client.retries"] == result.fires


def test_endpoint_crash_cell_fails_over_without_client_retries():
    result = run_cell("endpoint_crash", "faas-file", seed=0, n_tasks=4)
    assert result.passed, result.failures
    assert result.fires == 1
    assert result.counters["faas.failovers"] >= 1
    assert result.counters["client.retries"] == 0


def test_cell_ledger_digest_is_deterministic():
    first = run_cell("store_corruption", "faas-file", seed=3, n_tasks=4)
    second = run_cell("store_corruption", "faas-file", seed=3, n_tasks=4)
    assert first.passed, first.failures
    assert first.digest == second.digest
    assert first.fires == second.fires


def test_different_seeds_give_different_ledgers():
    a = run_cell("worker_exception", "faas-file", seed=0, n_tasks=6)
    b = run_cell("worker_exception", "faas-file", seed=1, n_tasks=6)
    assert a.passed and b.passed
    assert a.digest != b.digest


def test_run_campaign_renders_a_verdict_table():
    results = run_campaign(
        modes=("worker_exception",), configs=("faas-file",), seed=0, n_tasks=4
    )
    assert len(results) == 1
    report = render_results(results)
    assert "worker_exception" in report
    assert "1/1 cells passed" in report


def test_configs_constant_matches_rig_builders():
    assert set(CONFIGS) == {"faas-file", "faas-redis", "faas-globus"}
