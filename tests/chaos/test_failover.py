"""Heartbeats, lease expiry, failover, and exactly-once result reporting."""

from __future__ import annotations

import pytest

from repro.exceptions import LeaseExpiredError, WorkflowError
from repro.faas import (
    SCOPE_COMPUTE,
    AuthServer,
    FaasClient,
    FaasCloud,
    FaasEndpoint,
)
from repro.faas.cloud import TaskStatus
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.defaults import PaperConstants, build_paper_testbed
from repro.observe import MetricsRegistry, set_metrics
from repro.resources import WorkerPool
from repro.serialize import serialize


def _add(a, b):
    return a + b


FAST = dict(endpoint_heartbeat_period=1.0, endpoint_lease_ttl=3.0)


@pytest.fixture
def cloud_rig():
    constants = PaperConstants(**FAST)
    testbed = build_paper_testbed(seed=7, constants=constants)
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, constants)
    return testbed, cloud, token


def test_heartbeat_renews_and_ttl_lapses(cloud_rig):
    testbed, cloud, token = cloud_rig
    ep = cloud.register_endpoint(token, "solo", testbed.theta_login)
    assert not cloud.lease_valid(ep)  # never heartbeated
    cloud.heartbeat(token, ep)
    assert cloud.lease_valid(ep)
    get_clock().sleep(2.0)
    cloud.heartbeat(token, ep)  # renewal pushes expiry out again
    get_clock().sleep(2.0)
    assert cloud.lease_valid(ep)
    get_clock().sleep(2.0)  # 4s since last beat > ttl of 3
    assert not cloud.lease_valid(ep)


def test_release_lease_is_a_graceful_goodbye(cloud_rig):
    testbed, cloud, token = cloud_rig
    metrics = MetricsRegistry()
    set_metrics(metrics)
    ep = cloud.register_endpoint(token, "solo", testbed.theta_login)
    cloud.heartbeat(token, ep)
    cloud.release_lease(token, ep)
    assert not cloud.lease_valid(ep)
    # A released lease is gone, not expired: no reap, no counter.
    assert cloud.expire_leases() == []
    assert metrics.counter_total("faas.lease_expiries") == 0


def test_expire_leases_reaps_and_reports(cloud_rig):
    testbed, cloud, token = cloud_rig
    ep = cloud.register_endpoint(token, "solo", testbed.theta_login)
    cloud.heartbeat(token, ep)
    get_clock().sleep(4.0)
    assert cloud.expire_leases() == [ep]
    assert cloud.expire_leases() == []  # idempotent: already reaped


def test_lease_expiry_fails_queued_work_over_to_group_survivor(cloud_rig):
    testbed, cloud, token = cloud_rig
    metrics = MetricsRegistry()
    set_metrics(metrics)
    ep_a = cloud.register_endpoint(
        token, "a", testbed.theta_login, failover_group="pair"
    )
    ep_b = cloud.register_endpoint(
        token, "b", testbed.theta_login, failover_group="pair"
    )
    cloud.heartbeat(token, ep_a)
    cloud.heartbeat(token, ep_b)
    with at_site(testbed.theta_login):
        func_id = cloud.register_function(token, serialize(_add))
        task_id = cloud.submit(token, "client", func_id, ep_a, serialize(((1, 2), {})))
        # ep_a fetches the task, then goes silent; ep_b keeps heartbeating.
        dispatched = cloud.fetch_tasks(token, ep_a, 10, timeout=1.0)
    assert [d.task_id for d in dispatched] == [task_id]
    get_clock().sleep(2.0)
    cloud.heartbeat(token, ep_b)
    get_clock().sleep(2.0)
    # ep_b's heartbeat doubles as the liveness sweep (bus-mode endpoints
    # don't poll while idle), so ep_a is reaped by it, not by our call.
    cloud.heartbeat(token, ep_b)
    assert not cloud.lease_valid(ep_a)
    assert cloud.expire_leases() == []
    record = cloud.task(task_id)
    assert record.status is TaskStatus.WAITING
    assert record.endpoint_id == ep_b
    assert record.previous_endpoints == [ep_a]
    assert record.requeues == 1
    assert metrics.counter_total("faas.failovers") == 1
    # The survivor now sees the task on its own queue.
    with at_site(testbed.theta_login):
        refetched = cloud.fetch_tasks(token, ep_b, 10, timeout=1.0)
    assert [d.task_id for d in refetched] == [task_id]


def test_lease_expiry_without_survivor_requeues_in_place(cloud_rig):
    testbed, cloud, token = cloud_rig
    ep = cloud.register_endpoint(token, "solo", testbed.theta_login)
    cloud.heartbeat(token, ep)
    with at_site(testbed.theta_login):
        func_id = cloud.register_function(token, serialize(_add))
        task_id = cloud.submit(token, "client", func_id, ep, serialize(((1, 2), {})))
        cloud.fetch_tasks(token, ep, 10, timeout=1.0)
    get_clock().sleep(4.0)
    assert cloud.expire_leases() == [ep]
    record = cloud.task(task_id)
    assert record.status is TaskStatus.WAITING
    assert record.endpoint_id == ep  # no group, nowhere else to go
    assert record.previous_endpoints == []


def test_report_result_is_idempotent(cloud_rig):
    testbed, cloud, token = cloud_rig
    metrics = MetricsRegistry()
    set_metrics(metrics)
    ep = cloud.register_endpoint(token, "solo", testbed.theta_login)
    cloud.heartbeat(token, ep)
    with at_site(testbed.theta_login):
        func_id = cloud.register_function(token, serialize(_add))
        task_id = cloud.submit(token, "client", func_id, ep, serialize(((1, 2), {})))
        cloud.fetch_tasks(token, ep, 10, timeout=1.0)
        cloud.report_result(token, ep, task_id, True, serialize({"value": 3}))
        # A second report (crash-requeued duplicate) is dropped, not an error.
        cloud.report_result(token, ep, task_id, True, serialize({"value": 3}))
    assert cloud.task(task_id).status is TaskStatus.SUCCESS
    assert metrics.counter_total("faas.duplicate_results") == 1


def test_stale_report_after_failover_raises_lease_expired(cloud_rig):
    testbed, cloud, token = cloud_rig
    ep_a = cloud.register_endpoint(
        token, "a", testbed.theta_login, failover_group="pair"
    )
    ep_b = cloud.register_endpoint(
        token, "b", testbed.theta_login, failover_group="pair"
    )
    cloud.heartbeat(token, ep_a)
    cloud.heartbeat(token, ep_b)
    with at_site(testbed.theta_login):
        func_id = cloud.register_function(token, serialize(_add))
        task_id = cloud.submit(token, "client", func_id, ep_a, serialize(((1, 2), {})))
        cloud.fetch_tasks(token, ep_a, 10, timeout=1.0)
    get_clock().sleep(2.0)
    cloud.heartbeat(token, ep_b)
    get_clock().sleep(2.0)
    cloud.heartbeat(token, ep_b)
    cloud.expire_leases()  # task now belongs to ep_b
    with at_site(testbed.theta_login):
        with pytest.raises(LeaseExpiredError):
            cloud.report_result(token, ep_a, task_id, True, serialize({"value": 3}))


def test_report_for_task_never_owned_is_a_protocol_violation(cloud_rig):
    testbed, cloud, token = cloud_rig
    ep_a = cloud.register_endpoint(token, "a", testbed.theta_login)
    ep_b = cloud.register_endpoint(token, "b", testbed.theta_login)
    cloud.heartbeat(token, ep_a)
    with at_site(testbed.theta_login):
        func_id = cloud.register_function(token, serialize(_add))
        task_id = cloud.submit(token, "client", func_id, ep_a, serialize(((1, 2), {})))
        cloud.fetch_tasks(token, ep_a, 10, timeout=1.0)
        with pytest.raises(WorkflowError):
            cloud.report_result(token, ep_b, task_id, True, serialize({"value": 3}))


def test_endpoint_crash_mid_lease_completes_on_survivor_without_client_help():
    """The acceptance scenario: kill one endpoint of a failover pair while it
    holds dispatched tasks; every task still completes, driven entirely by
    lease expiry plus the survivor's polling — the client has no retry
    policy, so any client-side recovery would surface as a failed future."""
    constants = PaperConstants(**FAST)
    testbed = build_paper_testbed(seed=7, constants=constants)
    metrics = MetricsRegistry()
    set_metrics(metrics)
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, constants)
    pool_a = WorkerPool(testbed.theta_compute, 2, name="pool-a")
    pool_b = WorkerPool(testbed.theta_compute, 2, name="pool-b")
    ep_a = FaasEndpoint(
        "ep-a", cloud, token, testbed.theta_login, pool_a,
        failover_group="pair", poll_interval=0.25,
    ).start()
    ep_b = FaasEndpoint(
        "ep-b", cloud, token, testbed.theta_login, pool_b,
        failover_group="pair", poll_interval=0.25,
    ).start()
    client = FaasClient(cloud, token, site=testbed.theta_login)
    try:
        with at_site(testbed.theta_login):
            futures = [
                client.run(_add, ep_a.endpoint_id, i, b=1) for i in range(4)
            ]
        ep_a.simulate_crash()
        assert [f.result(timeout=120) for f in futures] == [1, 2, 3, 4]
    finally:
        client.close()
        ep_a.stop()
        ep_b.stop()
    assert metrics.counter_total("endpoint.crashes") == 1
    assert metrics.counter_total("faas.lease_expiries") >= 1
    assert metrics.counter_total("client.retries") == 0
    assert all(r.status.terminal for r in cloud.task_records())
