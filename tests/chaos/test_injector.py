"""FaultPlan/FaultInjector semantics: selection, gating, and the global hook."""

from __future__ import annotations

import pytest

from repro.chaos.plan import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    attempt_from_key,
    chaos_check,
    chaos_enabled,
    get_injector,
    set_injector,
)


def make_injector(*specs: FaultSpec, seed: int = 0) -> FaultInjector:
    return FaultInjector(FaultPlan.build(seed, specs))


def test_unknown_hook_rejected_at_construction():
    with pytest.raises(ValueError, match="unknown chaos hook"):
        FaultSpec("worker.exceute", "typo")  # note the typo


def test_spec_validation():
    with pytest.raises(ValueError):
        FaultSpec("worker.execute", "m", rate=1.5)
    with pytest.raises(ValueError):
        FaultSpec("worker.execute", "m", delay=-1.0)
    with pytest.raises(ValueError):
        FaultSpec("worker.execute", "m", max_fires=-1)


def test_rate_one_fires_on_first_occurrence_only():
    injector = make_injector(FaultSpec("worker.execute", "boom", rate=1.0))
    assert injector.check("worker.execute", "k1") is not None
    # Same key again: occurrence 1 is not in the default occurrences=(0,).
    assert injector.check("worker.execute", "k1") is None
    # A different key has its own occurrence counter.
    assert injector.check("worker.execute", "k2") is not None
    assert injector.fire_count() == 2


def test_occurrences_select_the_nth_repetition():
    injector = make_injector(
        FaultSpec("store.get", "flaky", occurrences=(1, 2))
    )
    assert injector.check("store.get", "k") is None  # occurrence 0
    assert injector.check("store.get", "k") is not None  # occurrence 1
    assert injector.check("store.get", "k") is not None  # occurrence 2
    assert injector.check("store.get", "k") is None  # occurrence 3


def test_match_filters_on_context():
    injector = make_injector(
        FaultSpec("worker.execute", "boom", match={"attempt": 0})
    )
    assert injector.check("worker.execute", "a", attempt=1) is None
    assert injector.check("worker.execute", "b", attempt=0) is not None
    # Missing context key does not equal the wanted value.
    assert injector.check("worker.execute", "c") is None


def test_max_fires_caps_total_injections():
    injector = make_injector(FaultSpec("endpoint.crash", "die", max_fires=1))
    fired = [
        injector.check("endpoint.crash", f"ep-{i}") is not None for i in range(5)
    ]
    assert sum(fired) == 1
    assert fired[0]  # rate 1.0: the first eligible event fires


def test_rate_selection_is_deterministic_and_partial():
    spec = FaultSpec("store.get", "corrupt", rate=0.5)
    first = [
        make_injector(spec).check("store.get", f"key-{i}") is not None
        for i in range(40)
    ]
    second = [
        make_injector(spec).check("store.get", f"key-{i}") is not None
        for i in range(40)
    ]
    assert first == second
    assert 0 < sum(first) < 40  # a strict subset, not all-or-nothing


def test_seed_changes_the_selected_subset():
    spec = FaultSpec("store.get", "corrupt", rate=0.5)
    by_seed = [
        tuple(
            make_injector(spec, seed=seed).check("store.get", f"key-{i}") is not None
            for i in range(40)
        )
        for seed in (0, 1)
    ]
    assert by_seed[0] != by_seed[1]


def test_fires_and_fire_count_filters():
    injector = make_injector(
        FaultSpec("worker.execute", "boom"),
        FaultSpec("store.get", "corrupt"),
    )
    injector.check("worker.execute", "k")
    injector.check("store.get", "k")
    events = injector.fires()
    assert {(e.hook, e.mode) for e in events} == {
        ("worker.execute", "boom"),
        ("store.get", "corrupt"),
    }
    assert all(e.key == "k#0" for e in events)
    assert injector.fire_count() == 2
    assert injector.fire_count(hook="store.get") == 1
    assert injector.fire_count(mode="boom") == 1
    assert injector.fire_count(hook="store.get", mode="boom") == 0


def test_global_hook_is_noop_without_injector():
    assert get_injector() is None
    assert not chaos_enabled()
    assert chaos_check("worker.execute", "k", attempt=0) is None


def test_global_hook_routes_to_installed_injector():
    injector = make_injector(FaultSpec("worker.execute", "boom"))
    set_injector(injector)
    try:
        assert chaos_enabled()
        assert chaos_check("worker.execute", "k") is not None
        assert injector.fire_count() == 1
    finally:
        set_injector(None)
    assert not chaos_enabled()


def test_attempt_from_key():
    assert attempt_from_key(None) == 0
    assert attempt_from_key("") == 0
    assert attempt_from_key("deadbeef#a0") == 0
    assert attempt_from_key("deadbeef#a3") == 3
    assert attempt_from_key("no-suffix") == 0
    assert attempt_from_key("weird#anot-a-number") == 0
