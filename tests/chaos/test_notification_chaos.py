"""Campaign cells for the notification fault modes (bus chaos).

The three bus modes join the standard fault matrix: every cell must still
satisfy the campaign invariants (no lost tasks, no orphan spans, counters
reconciling with the injected-fault ledger) and produce bit-identical
ledger digests across reruns of the same seed.
"""

from repro.chaos.campaign import FAULT_MODES, run_cell


def test_notification_modes_are_in_the_fault_matrix():
    for mode in ("notification_loss", "notification_duplicate", "subscription_drop"):
        assert mode in FAULT_MODES


def test_notification_loss_recovers_via_redelivery_deterministically():
    first = run_cell("notification_loss", "faas-file", seed=11)
    rerun = run_cell("notification_loss", "faas-file", seed=11)
    assert first.passed, first.failures
    assert rerun.passed, rerun.failures
    assert first.fires >= 1
    # Lost doorbells come back from the bus, never from client retries.
    assert first.counters["bus.redelivered"] >= first.fires
    assert first.counters["client.retries"] == 0
    assert first.digest == rerun.digest


def test_notification_duplicate_is_suppressed_by_sequence_numbers():
    result = run_cell("notification_duplicate", "faas-file", seed=5)
    assert result.passed, result.failures
    assert result.fires >= 1
    assert result.counters["bus.duplicates_dropped"] >= result.fires


def test_subscription_drop_idle_polling_stays_near_zero():
    """The acceptance criterion: even while chaos keeps dropping
    subscriptions, the endpoint's idle-poll fraction stays below 5% of the
    polling-only baseline, and the fallback demonstrably caught the gap."""
    baseline = run_cell("none", "faas-file", seed=3, use_bus=False)
    cell = run_cell("subscription_drop", "faas-file", seed=3)
    assert baseline.passed, baseline.failures
    assert cell.passed, cell.failures
    baseline_fraction = baseline.counters["endpoint.polls_empty"] / max(
        baseline.counters["endpoint.polls"], 1
    )
    bus_fraction = cell.counters["endpoint.polls_empty"] / max(
        cell.counters["endpoint.polls"], 1
    )
    assert baseline_fraction > 0.5  # polling-only endpoints mostly spin
    assert bus_fraction < 0.05 * baseline_fraction
    assert cell.counters["bus.fallback_engaged"] > 0
