"""RetryPolicy and the stable hash underneath fault selection."""

from __future__ import annotations

import pytest

from repro.chaos.policy import RetryPolicy, stable_unit_hash


def test_stable_unit_hash_range_and_determinism():
    values = [stable_unit_hash(f"key-{i}") for i in range(200)]
    assert all(0.0 <= v < 1.0 for v in values)
    assert values == [stable_unit_hash(f"key-{i}") for i in range(200)]
    # Distinct inputs spread out rather than collapsing to a few values.
    assert len(set(values)) == len(values)


def test_retry_policy_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_attempts=0)
    with pytest.raises(ValueError):
        RetryPolicy(base_delay=-1.0)
    with pytest.raises(ValueError):
        RetryPolicy(multiplier=0.5)
    with pytest.raises(ValueError):
        RetryPolicy(jitter=1.5)


def test_retries_left():
    policy = RetryPolicy(max_attempts=3)
    assert policy.retries_left(0)
    assert policy.retries_left(1)
    assert not policy.retries_left(2)
    assert not policy.retries_left(99)


def test_delay_for_grows_and_caps():
    policy = RetryPolicy(base_delay=1.0, multiplier=2.0, max_delay=3.0, jitter=0.0)
    assert policy.delay_for(0, key="k") == 1.0
    assert policy.delay_for(1, key="k") == 2.0
    # attempt 2 would be 4.0 un-capped
    assert policy.delay_for(2, key="k") == 3.0


def test_delay_for_jitter_is_bounded_and_deterministic():
    policy = RetryPolicy(base_delay=1.0, multiplier=1.0, max_delay=10.0, jitter=0.25)
    delays = [policy.delay_for(0, key=f"k{i}") for i in range(50)]
    assert all(0.75 <= d <= 1.25 for d in delays)
    assert delays == [policy.delay_for(0, key=f"k{i}") for i in range(50)]
    # Jitter depends on the key, so different tasks do not retry in lockstep.
    assert len(set(delays)) > 1


def test_max_elapsed_validation():
    with pytest.raises(ValueError):
        RetryPolicy(max_elapsed=-1.0)
    RetryPolicy(max_elapsed=0.0)  # zero budget is legal: no retries ever


def test_max_elapsed_caps_retries_independently_of_attempts():
    policy = RetryPolicy(max_attempts=10, max_elapsed=30.0)
    # Under budget: the attempt cap is the only limit.
    assert policy.retries_left(0, elapsed=0.0)
    assert policy.retries_left(5, elapsed=29.9)
    # At or past the budget, no retry is granted even with attempts left.
    assert not policy.retries_left(0, elapsed=30.0)
    assert not policy.retries_left(1, elapsed=45.0)
    # A zero budget disables retries outright.
    assert not RetryPolicy(max_attempts=10, max_elapsed=0.0).retries_left(0)


def test_max_elapsed_default_is_unbounded():
    policy = RetryPolicy(max_attempts=3)
    # Without a budget, elapsed time never vetoes a retry.
    assert policy.retries_left(0, elapsed=1e9)
    assert not policy.retries_left(2, elapsed=0.0)


def test_max_elapsed_jitter_stays_deterministic():
    # The budget changes *whether* a retry happens, never the backoff bits:
    # delays for the same (key, attempt) are identical with or without it.
    budgeted = RetryPolicy(base_delay=1.0, jitter=0.25, max_elapsed=5.0)
    unbounded = RetryPolicy(base_delay=1.0, jitter=0.25)
    for attempt in range(4):
        for key in ("a", "b", "c"):
            assert budgeted.delay_for(attempt, key=key) == unbounded.delay_for(
                attempt, key=key
            )
