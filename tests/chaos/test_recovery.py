"""Per-layer recovery under injected faults: client, endpoint, store."""

from __future__ import annotations

import pytest

from repro.chaos.plan import FaultInjector, FaultPlan, FaultSpec, set_injector
from repro.chaos.policy import RetryPolicy
from repro.exceptions import (
    DeadlineExceededError,
    LeaseExpiredError,
    ReproError,
    RetryExhaustedError,
    StoreError,
    TaskError,
    TimeoutError_,
)
from repro.faas import (
    SCOPE_COMPUTE,
    AuthServer,
    FaasClient,
    FaasCloud,
    FaasEndpoint,
)
from repro.net.context import at_site
from repro.observe import MetricsRegistry, set_metrics
from repro.proxystore import FileConnector, Store
from repro.resources import WorkerPool


def _add(a, b):
    return a + b


def install(*specs: FaultSpec, seed: int = 0) -> FaultInjector:
    injector = FaultInjector(FaultPlan.build(seed, specs))
    set_injector(injector)
    return injector


@pytest.fixture
def faas_rig(testbed):
    metrics = MetricsRegistry()
    set_metrics(metrics)
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("u", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 2, name="recovery-pool")
    endpoint = FaasEndpoint("theta", cloud, token, testbed.theta_login, pool).start()
    yield testbed, cloud, endpoint, metrics
    endpoint.stop()


def test_exception_renames_and_aliases():
    # The deprecated alias still points at the renamed class.
    assert TimeoutError_ is DeadlineExceededError
    exc = RetryExhaustedError("gave up", attempts=3, last_error="boom")
    assert exc.attempts == 3
    assert exc.last_error == "boom"
    assert isinstance(exc, ReproError)
    assert issubclass(LeaseExpiredError, ReproError)


def test_dispatch_error_reports_failed_instead_of_dropping(faas_rig):
    """A task whose *arguments* cannot be read must come back FAILED, not
    hang forever: the endpoint reports the dispatch error to the cloud."""
    testbed, cloud, endpoint, metrics = faas_rig
    install(FaultSpec("cloud.store.read", "corrupt", rate=1.0, max_fires=1))
    client = FaasClient(cloud, token=endpoint.token, site=testbed.theta_login)
    try:
        with at_site(testbed.theta_login):
            future = client.run(_add, endpoint.endpoint_id, 1, b=2)
        with pytest.raises(TaskError, match="injected fault"):
            future.result(timeout=60)
    finally:
        client.close()
    assert metrics.counter_total("endpoint.dispatch_errors") == 1


def test_client_retry_recovers_worker_exceptions(faas_rig):
    testbed, cloud, endpoint, metrics = faas_rig
    install(FaultSpec("worker.execute", "boom", rate=1.0, match={"attempt": 0}))
    client = FaasClient(
        cloud,
        token=endpoint.token,
        site=testbed.theta_login,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.1, max_delay=1.0),
    )
    try:
        with at_site(testbed.theta_login):
            futures = [client.run(_add, endpoint.endpoint_id, i, b=1) for i in range(3)]
        assert [f.result(timeout=120) for f in futures] == [1, 2, 3]
    finally:
        client.close()
    assert metrics.counter_total("client.retries") == 3
    assert metrics.counter_total("client.retries_exhausted") == 0


def test_client_retry_budget_exhausts_into_retry_exhausted(faas_rig):
    testbed, cloud, endpoint, metrics = faas_rig
    # occurrences 0..4 cover every attempt the 2-attempt policy can make.
    install(
        FaultSpec("worker.execute", "boom", rate=1.0, occurrences=tuple(range(5)))
    )
    client = FaasClient(
        cloud,
        token=endpoint.token,
        site=testbed.theta_login,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.1, max_delay=1.0),
    )
    try:
        with at_site(testbed.theta_login):
            future = client.run(_add, endpoint.endpoint_id, 1, b=2)
        with pytest.raises(RetryExhaustedError) as excinfo:
            future.result(timeout=120)
        assert excinfo.value.attempts == 2
    finally:
        client.close()
    assert metrics.counter_total("client.retries_exhausted") == 1


def test_client_without_policy_fails_fast(faas_rig):
    testbed, cloud, endpoint, metrics = faas_rig
    install(FaultSpec("worker.execute", "boom", rate=1.0))
    client = FaasClient(cloud, token=endpoint.token, site=testbed.theta_login)
    try:
        with at_site(testbed.theta_login):
            future = client.run(_add, endpoint.endpoint_id, 1, b=2)
        with pytest.raises(TaskError, match="injected fault"):
            future.result(timeout=60)
    finally:
        client.close()
    assert metrics.counter_total("client.retries") == 0


def test_submit_retry_recovers_payload_cap_rejection(faas_rig):
    testbed, cloud, endpoint, metrics = faas_rig
    install(FaultSpec("cloud.submit", "payload_cap", rate=1.0, match={"attempt": 0}))
    client = FaasClient(
        cloud,
        token=endpoint.token,
        site=testbed.theta_login,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.1, max_delay=1.0),
    )
    try:
        with at_site(testbed.theta_login):
            future = client.run(_add, endpoint.endpoint_id, 1, b=2)
        assert future.result(timeout=60) == 3
    finally:
        client.close()
    assert metrics.counter_total("client.submit_retries") == 1


def test_store_retry_recovers_read_corruption(testbed):
    metrics = MetricsRegistry()
    set_metrics(metrics)
    install(FaultSpec("store.get", "corrupt", rate=1.0, match={"attempt": 0}))
    store = Store(
        "recovery-store",
        FileConnector(testbed.mounts.volume("theta-lustre"), "recovery"),
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.1, max_delay=1.0),
    )
    try:
        with at_site(testbed.theta_login):
            key = store.put([1, 2, 3])
            assert store.get(key) == [1, 2, 3]
    finally:
        store.close()
    assert metrics.counter_total("store.retries") == 1


def test_store_without_policy_surfaces_corruption(testbed):
    install(FaultSpec("store.get", "corrupt", rate=1.0))
    store = Store(
        "fragile-store",
        FileConnector(testbed.mounts.volume("theta-lustre"), "fragile"),
    )
    try:
        with at_site(testbed.theta_login):
            key = store.put([1, 2, 3])
            with pytest.raises(StoreError, match="injected fault"):
                store.get(key)
    finally:
        store.close()


def test_store_retry_budget_exhausts(testbed):
    install(
        FaultSpec("store.get", "corrupt", rate=1.0, occurrences=tuple(range(5)))
    )
    store = Store(
        "doomed-store",
        FileConnector(testbed.mounts.volume("theta-lustre"), "doomed"),
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.1, max_delay=1.0),
    )
    try:
        with at_site(testbed.theta_login):
            key = store.put([1, 2, 3])
            with pytest.raises(RetryExhaustedError):
                store.get(key)
    finally:
        store.close()
