"""Shared fixtures: fast clock, clean registries, canonical testbed."""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, settings

from repro.apps.environment import clear_software
from repro.batch.reactor import reset_reactor
from repro.bench.recording import set_global_log
from repro.chaos.plan import set_injector
from repro.net.clock import reset_clock
from repro.net.defaults import build_paper_testbed
from repro.observe import set_metrics, set_tracer
from repro.proxystore.store import clear_store_registry

# Property tests share the module-scoped clean_state fixture; silence the
# (irrelevant here) function-scoped-fixture health check.
settings.register_profile(
    "repro",
    suppress_health_check=[HealthCheck.function_scoped_fixture],
    deadline=None,
    max_examples=50,
)
settings.load_profile("repro")

#: One nominal second = 2 ms of wall time in tests.
TEST_TIME_SCALE = 0.002


@pytest.fixture(autouse=True)
def clean_state():
    # The reactor holds timers scheduled against the previous test's clock
    # epoch; drop it before the clock resets so none can fire across tests.
    reset_reactor()
    reset_clock(TEST_TIME_SCALE)
    clear_store_registry()
    clear_software()
    set_global_log(None)
    set_tracer(None)
    set_metrics(None)
    set_injector(None)
    yield
    set_global_log(None)
    set_tracer(None)
    set_metrics(None)
    set_injector(None)
    clear_store_registry()
    clear_software()


@pytest.fixture
def testbed():
    return build_paper_testbed(seed=42)
