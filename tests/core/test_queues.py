"""Tests for the Colmena client/server queues and proxy thresholds."""

import pytest

from repro.core.queues import ColmenaQueues, KillSignal, TopicSpec
from repro.exceptions import WorkflowError
from repro.net.context import at_site
from repro.net.kvstore import KVServer
from repro.proxystore import FileConnector, Store, is_proxy
from repro.serialize import Blob


@pytest.fixture
def store(testbed):
    return Store("q-store", FileConnector(testbed.mounts.volume("theta-lustre")))


@pytest.fixture
def queues(testbed, store):
    return ColmenaQueues(
        KVServer(testbed.theta_login),
        testbed.network,
        topics=["simulate"],
        topic_specs={
            "proxied": TopicSpec("proxied", store=store, proxy_threshold=1000)
        },
    )


def test_round_trip(queues, testbed):
    with at_site(testbed.theta_login):
        sent = queues.send_request("method_a", args=(1, 2), topic="simulate")
        task = queues.get_task(timeout=5)
        assert task.method == "method_a"
        assert task.args == (1, 2)
        assert task.task_id == sent.task_id
        task.set_success(3)
        queues.send_result(task)
        result = queues.get_result("simulate", timeout=5)
    assert result.value == 3
    assert result.task_id == sent.task_id


def test_timestamps_and_durations_populated(queues, testbed):
    with at_site(testbed.theta_login):
        queues.send_request("m", topic="simulate")
        task = queues.get_task(timeout=5)
        task.set_success(None)
        queues.send_result(task)
        result = queues.get_result("simulate", timeout=5)
    assert result.time_created is not None
    assert result.time_client_sent is not None
    assert result.time_server_received is not None
    assert result.time_client_result_received is not None
    assert result.dur_serialize_inputs > 0
    assert result.dur_server_deserialize > 0
    assert result.dur_server_serialize > 0
    assert result.dur_deserialize_value > 0


def test_get_result_timeout_returns_none(queues, testbed):
    with at_site(testbed.theta_login):
        assert queues.get_result("simulate", timeout=0.2) is None
        assert queues.get_task(timeout=0.2) is None


def test_topics_are_separate(queues, testbed):
    with at_site(testbed.theta_login):
        queues.send_request("m", topic="simulate")
        task = queues.get_task(timeout=5)
        task.set_success(1)
        queues.send_result(task)
        assert queues.get_result("default", timeout=0.2) is None
        assert queues.get_result("simulate", timeout=5) is not None


def test_unknown_topic_rejected(queues, testbed):
    with at_site(testbed.theta_login):
        with pytest.raises(WorkflowError):
            queues.send_request("m", topic="ghost")


def test_kill_signal(queues, testbed):
    with at_site(testbed.theta_login):
        queues.send_kill_signal()
        with pytest.raises(KillSignal):
            queues.get_task(timeout=5)


def test_large_inputs_proxied(queues, testbed):
    with at_site(testbed.theta_login):
        queues.send_request(
            "m", args=(Blob(100_000),), kwargs={"big": Blob(50_000)}, topic="proxied"
        )
        task = queues.get_task(timeout=5)
    assert is_proxy(task.args[0])
    assert is_proxy(task.kwargs["big"])


def test_small_inputs_not_proxied(queues, testbed):
    with at_site(testbed.theta_login):
        queues.send_request("m", args=(b"small",), topic="proxied")
        task = queues.get_task(timeout=5)
    assert task.args[0] == b"small"


def test_existing_proxy_not_double_proxied(queues, store, testbed):
    with at_site(testbed.theta_login):
        existing = store.proxy(Blob(100_000))
        queues.send_request("m", args=(existing,), topic="proxied")
        task = queues.get_task(timeout=5)
        # The factory key must be unchanged: the arg went through as-is.
        original_key = object.__getattribute__(existing, "__proxy_factory__").key
        task_key = object.__getattribute__(task.args[0], "__proxy_factory__").key
    assert task_key == original_key


def test_no_store_means_no_proxying(testbed):
    queues = ColmenaQueues(
        KVServer(testbed.theta_login), testbed.network, topics=["plain"]
    )
    with at_site(testbed.theta_login):
        queues.send_request("m", args=(Blob(1_000_000),), topic="plain")
        task = queues.get_task(timeout=5)
    assert isinstance(task.args[0], Blob)


def test_topic_spec_should_proxy():
    spec = TopicSpec("t", store=object(), proxy_threshold=100)  # type: ignore[arg-type]
    assert spec.should_proxy(101)
    assert not spec.should_proxy(100)
    assert not TopicSpec("t").should_proxy(10**9)
    assert not TopicSpec("t", store=object(), proxy_threshold=None).should_proxy(1)  # type: ignore[arg-type]


def test_task_info_round_trips(queues, testbed):
    with at_site(testbed.theta_login):
        queues.send_request("m", topic="simulate", task_info={"batch": 3})
        task = queues.get_task(timeout=5)
    assert task.task_info == {"batch": 3}
