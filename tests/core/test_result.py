"""Tests for the Result timing ledger."""

import pickle

import pytest

from repro.core.result import Result
from repro.net.clock import get_clock
from repro.proxystore.proxy import Proxy, SimpleFactory


def test_unique_task_ids():
    ids = {Result(method="m").task_id for _ in range(50)}
    assert len(ids) == 50


def test_timestamps_stamp_in_order():
    clock = get_clock()
    result = Result(method="m")
    result.mark_created()
    clock.sleep(0.1)
    result.mark_client_sent()
    clock.sleep(0.1)
    result.mark_server_received()
    clock.sleep(0.1)
    result.mark_server_dispatched()
    clock.sleep(0.1)
    result.mark_worker_started()
    clock.sleep(0.1)
    result.mark_compute_started()
    clock.sleep(0.2)
    result.mark_compute_ended()
    clock.sleep(0.1)
    result.mark_worker_ended()
    clock.sleep(0.1)
    result.mark_server_result_received()
    clock.sleep(0.1)
    result.mark_client_result_received()

    assert result.time_running >= 0.2
    assert result.time_on_worker >= 0.4
    assert result.comm_client_to_server >= 0.1
    assert result.comm_server_to_worker >= 0.1
    assert result.comm_worker_to_server >= 0.1
    assert result.comm_server_to_client >= 0.1
    assert result.task_lifetime >= 0.9
    assert result.notification_latency >= 0.3
    assert result.overhead == pytest.approx(
        result.task_lifetime - result.time_running
    )


def test_derived_metrics_none_when_unstamped():
    result = Result(method="m")
    assert result.time_running is None
    assert result.task_lifetime is None
    assert result.overhead is None
    assert result.notification_latency is None


def test_serialization_total_sums_components():
    result = Result(method="m")
    result.dur_proxy_inputs = 0.1
    result.dur_serialize_inputs = 0.2
    result.dur_server_deserialize = 0.05
    result.dur_server_serialize = 0.05
    result.dur_deserialize_inputs = 0.3
    result.dur_proxy_value = 0.1
    result.dur_serialize_value = 0.1
    result.dur_deserialize_value = 0.1
    assert result.time_serialization == pytest.approx(1.0)


def test_success_and_failure_paths():
    ok = Result(method="m")
    ok.set_success(42)
    assert ok.success and ok.complete and ok.value == 42

    bad = Result(method="m")
    bad.set_failure("boom", "traceback-text")
    assert bad.success is False
    assert bad.complete
    assert bad.error == "boom"
    assert bad.remote_traceback == "traceback-text"


def test_access_value_plain():
    result = Result(method="m")
    result.set_success({"k": 1})
    assert result.access_value() == {"k": 1}
    assert result.time_value_accessed is not None
    assert result.dur_resolve_value == 0.0


def test_access_value_resolves_proxy_and_times_it():
    class SlowFactory(SimpleFactory):
        def resolve(self):
            get_clock().sleep(0.5)
            return super().resolve()

    result = Result(method="m")
    result.set_success(Proxy(SlowFactory("payload")))
    value = result.access_value()
    assert value == "payload"
    assert result.dur_resolve_value >= 0.5


def test_access_value_second_call_keeps_first_timestamp():
    result = Result(method="m")
    result.set_success(1)
    result.access_value()
    stamp = result.time_value_accessed
    get_clock().sleep(0.2)
    result.access_value()
    assert result.time_value_accessed == stamp


def test_result_pickles_with_ledger():
    result = Result(method="m", args=(1,), kwargs={"k": 2}, topic="t")
    result.mark_created()
    result.dur_serialize_inputs = 0.25
    clone = pickle.loads(pickle.dumps(result))
    assert clone.method == "m"
    assert clone.args == (1,)
    assert clone.topic == "t"
    assert clone.time_created == result.time_created
    assert clone.dur_serialize_inputs == 0.25
