"""Tests for ColmenaTask and the three task servers."""

import pytest

from repro.core.queues import ColmenaQueues, TopicSpec
from repro.core.result import Result
from repro.core.task_server import (
    ColmenaTask,
    FuncXTaskServer,
    LocalTaskServer,
    MethodSpec,
    ParslTaskServer,
)
from repro.exceptions import WorkflowError
from repro.faas import SCOPE_COMPUTE, AuthServer, FaasClient, FaasCloud, FaasEndpoint
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.kvstore import KVServer
from repro.parsl import DataFlowKernel, HtexExecutor, SSHTunnel
from repro.proxystore import FileConnector, Store, is_proxy
from repro.resources import WorkerPool
from repro.serialize import Blob


def _double(x):
    return 2 * x


def _boom():
    raise RuntimeError("task failed")


def _emit_blob(nbytes):
    return Blob(nbytes)


# -- ColmenaTask -----------------------------------------------------------------


def test_colmena_task_success_ledger():
    task = ColmenaTask(_double)
    result = Result(method="_double", args=(21,))
    out = task(result)
    assert out.success and out.value == 42
    assert out.time_worker_started is not None
    assert out.time_compute_started is not None
    assert out.time_compute_ended is not None
    assert out.time_worker_ended is not None
    assert out.time_on_worker >= 0


def test_colmena_task_failure_captured():
    task = ColmenaTask(_boom)
    result = Result(method="_boom")
    out = task(result)
    assert out.success is False
    assert "task failed" in out.error
    assert "RuntimeError" in out.remote_traceback
    assert out.time_worker_ended is not None


def test_colmena_task_resolves_input_proxies(testbed):
    store = Store("ts-in", FileConnector(testbed.mounts.volume("theta-lustre")))
    with at_site(testbed.theta_login):
        proxy = store.proxy(5)
        task = ColmenaTask(_double)
        result = Result(method="_double", args=(proxy,))
        out = task(result)
    assert out.value == 10
    assert out.dur_resolve_proxies >= 0


def test_colmena_task_proxies_large_outputs(testbed):
    Store("ts-out", FileConnector(testbed.mounts.volume("theta-lustre")))
    task = ColmenaTask(_emit_blob, output_store="ts-out", output_threshold=1000)
    with at_site(testbed.theta_login):
        out = task(Result(method="_emit_blob", args=(100_000,)))
        assert is_proxy(out.value)
        assert out.value == Blob(100_000)  # resolves transparently


def test_colmena_task_small_outputs_stay_by_value(testbed):
    Store("ts-out2", FileConnector(testbed.mounts.volume("theta-lustre")))
    task = ColmenaTask(_emit_blob, output_store="ts-out2", output_threshold=10**9)
    with at_site(testbed.theta_login):
        out = task(Result(method="_emit_blob", args=(10,)))
    assert not is_proxy(out.value)


def test_method_spec_naming():
    spec = MethodSpec(_double)
    assert spec.name == "_double"
    assert spec.task().fn is _double


# -- task servers -----------------------------------------------------------------------


def _run_round_trip(queues, server, testbed, n=4):
    server.start()
    try:
        with at_site(testbed.theta_login):
            for i in range(n):
                queues.send_request("_double", args=(i,), topic="default")
            values = []
            for _ in range(n):
                result = queues.get_result("default", timeout=60)
                assert result is not None and result.success, result and result.error
                values.append(result.value)
        return sorted(values)
    finally:
        with at_site(testbed.theta_login):
            queues.send_kill_signal()
        server.join(timeout=10)
        server.stop()


def _make_queues(testbed):
    return ColmenaQueues(KVServer(testbed.theta_login), testbed.network)


def test_local_task_server_round_trip(testbed):
    queues = _make_queues(testbed)
    server = LocalTaskServer(
        queues, [MethodSpec(_double)], testbed.theta_login, n_workers=2
    )
    assert _run_round_trip(queues, server, testbed) == [0, 2, 4, 6]


def test_unknown_method_returns_failure(testbed):
    queues = _make_queues(testbed)
    server = LocalTaskServer(queues, [MethodSpec(_double)], testbed.theta_login)
    server.start()
    try:
        with at_site(testbed.theta_login):
            queues.send_request("no_such_method", topic="default")
            result = queues.get_result("default", timeout=30)
        assert result.success is False
        assert "no_such_method" in result.error
    finally:
        with at_site(testbed.theta_login):
            queues.send_kill_signal()
        server.join(timeout=10)
        server.stop()


def test_task_failure_routed_back(testbed):
    queues = _make_queues(testbed)
    server = LocalTaskServer(queues, [MethodSpec(_boom)], testbed.theta_login)
    server.start()
    try:
        with at_site(testbed.theta_login):
            queues.send_request("_boom", topic="default")
            result = queues.get_result("default", timeout=30)
        assert result.success is False
        assert "task failed" in result.error
    finally:
        with at_site(testbed.theta_login):
            queues.send_kill_signal()
        server.join(timeout=10)
        server.stop()


def test_server_requires_methods(testbed):
    queues = _make_queues(testbed)
    with pytest.raises(WorkflowError):
        LocalTaskServer(queues, [], testbed.theta_login)


def test_server_requires_unique_method_names(testbed):
    queues = _make_queues(testbed)
    with pytest.raises(WorkflowError):
        LocalTaskServer(
            queues, [MethodSpec(_double), MethodSpec(_double)], testbed.theta_login
        )


def test_parsl_task_server_round_trip(testbed):
    queues = _make_queues(testbed)
    cpu = HtexExecutor(
        "cpu",
        testbed.theta_login,
        WorkerPool(testbed.theta_compute, 2, name="pts-cpu"),
        testbed.network,
    )
    server = ParslTaskServer(
        queues,
        [MethodSpec(_double, target="cpu")],
        testbed.theta_login,
        DataFlowKernel([cpu]),
    )
    assert _run_round_trip(queues, server, testbed) == [0, 2, 4, 6]


def test_funcx_task_server_round_trip(testbed):
    queues = _make_queues(testbed)
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("u", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 2, name="fts-pool")
    endpoint = FaasEndpoint("theta", cloud, token, testbed.theta_login, pool).start()
    client = FaasClient(cloud, token, site=testbed.theta_login)
    server = FuncXTaskServer(
        queues,
        [MethodSpec(_double, target=endpoint.endpoint_id)],
        testbed.theta_login,
        client,
    )
    try:
        assert _run_round_trip(queues, server, testbed) == [0, 2, 4, 6]
    finally:
        endpoint.stop()


def test_funcx_server_requires_targets(testbed):
    queues = _make_queues(testbed)
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("u", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    client = FaasClient(cloud, token, site=testbed.theta_login)
    server = FuncXTaskServer(
        queues, [MethodSpec(_double)], testbed.theta_login, client
    )
    with pytest.raises(WorkflowError):
        server.start()
    server._running = False
    client.close()
