"""Tests for the agent framework and the resource counter."""

import threading

import pytest

from repro.core.queues import ColmenaQueues
from repro.core.task_server import LocalTaskServer, MethodSpec
from repro.core.thinker import (
    BaseThinker,
    ResourceCounter,
    agent,
    event_responder,
    result_processor,
    task_submitter,
)
from repro.exceptions import WorkflowError
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.kvstore import KVServer


def _identity(x):
    return x


# -- ResourceCounter ---------------------------------------------------------


def test_counter_allocate_acquire_release():
    counter = ResourceCounter(4, ["sim"])
    counter.allocate("sim", 3)
    assert counter.unallocated == 1
    assert counter.allocated("sim") == 3
    assert counter.available("sim") == 3
    assert counter.acquire("sim", 2, timeout=1)
    assert counter.available("sim") == 1
    counter.release("sim", 2)
    assert counter.available("sim") == 3


def test_counter_acquire_timeout():
    counter = ResourceCounter(1, ["sim"])
    counter.allocate("sim", 1)
    assert counter.acquire("sim", 1, timeout=1)
    assert not counter.acquire("sim", 1, timeout=0.2)


def test_counter_acquire_wakes_on_release():
    counter = ResourceCounter(1, ["sim"])
    counter.allocate("sim", 1)
    assert counter.acquire("sim", 1, timeout=1)

    def release_later():
        get_clock().sleep(0.5)
        counter.release("sim", 1)

    thread = threading.Thread(target=release_later, daemon=True)
    thread.start()
    assert counter.acquire("sim", 1, timeout=30)
    thread.join()


def test_counter_over_allocation_rejected():
    counter = ResourceCounter(2, ["sim"])
    with pytest.raises(WorkflowError):
        counter.allocate("sim", 3)


def test_counter_over_release_rejected():
    counter = ResourceCounter(2, ["sim"])
    counter.allocate("sim", 1)
    with pytest.raises(WorkflowError):
        counter.release("sim", 1)


def test_counter_unknown_pool():
    counter = ResourceCounter(2, ["sim"])
    with pytest.raises(WorkflowError):
        counter.acquire("ghost", 1)
    with pytest.raises(WorkflowError):
        counter.allocate("ghost", 1)


def test_counter_reallocate():
    counter = ResourceCounter(4, ["sim", "sample"])
    counter.allocate("sim", 4)
    assert counter.reallocate("sim", "sample", 2, timeout=1)
    assert counter.allocated("sim") == 2
    assert counter.allocated("sample") == 2
    assert counter.available("sample") == 2


def test_counter_reallocate_timeout_when_busy():
    counter = ResourceCounter(1, ["sim", "sample"])
    counter.allocate("sim", 1)
    assert counter.acquire("sim", 1, timeout=1)  # slot is busy
    assert not counter.reallocate("sim", "sample", 1, timeout=0.2)


def test_counter_negative_total_rejected():
    with pytest.raises(ValueError):
        ResourceCounter(-1)


# -- Thinker framework --------------------------------------------------------------


def _make_queues(testbed):
    return ColmenaQueues(KVServer(testbed.theta_login), testbed.network)


def test_thinker_without_agents_rejected(testbed):
    class Empty(BaseThinker):
        pass

    thinker = Empty(_make_queues(testbed), testbed.theta_login)
    with pytest.raises(WorkflowError):
        thinker.start()


def test_plain_agent_runs_and_critical_sets_done(testbed):
    ran = threading.Event()

    class One(BaseThinker):
        @agent
        def main(self):
            ran.set()

    thinker = One(_make_queues(testbed), testbed.theta_login)
    thinker.start()
    thinker.join(timeout=5)
    assert ran.is_set()
    assert thinker.done.is_set()
    assert not thinker.agent_errors


def test_non_critical_agent_does_not_set_done(testbed):
    class Two(BaseThinker):
        @agent(critical=False)
        def helper(self):
            pass

        @agent
        def main(self):
            self.done.wait(5)

    thinker = Two(_make_queues(testbed), testbed.theta_login)
    thinker.start()
    get_clock().sleep(5.0)
    assert not thinker.done.is_set() or thinker.agent_errors == []
    thinker.done.set()
    thinker.join(timeout=5)


def test_agent_exception_recorded_and_ends_run(testbed):
    class Bad(BaseThinker):
        @agent(critical=False)
        def broken(self):
            raise RuntimeError("agent crash")

        @agent
        def main(self):
            self.done.wait(10)

    thinker = Bad(_make_queues(testbed), testbed.theta_login)
    thinker.start()
    thinker.join(timeout=10)
    assert thinker.done.is_set()
    assert any("agent crash" in str(e) for e in thinker.agent_errors)


def test_double_start_rejected(testbed):
    class One(BaseThinker):
        @agent
        def main(self):
            pass

    thinker = One(_make_queues(testbed), testbed.theta_login)
    thinker.start()
    with pytest.raises(WorkflowError):
        thinker.start()
    thinker.join(timeout=5)


def test_event_responder_fires_and_clears(testbed):
    fired = []

    class Evt(BaseThinker):
        @event_responder(event="go")
        def responder(self):
            fired.append(get_clock().now())

        @agent
        def main(self):
            self.set_event("go")
            get_clock().sleep(2.0)
            self.set_event("go")
            get_clock().sleep(2.0)

    thinker = Evt(_make_queues(testbed), testbed.theta_login)
    thinker.run()
    assert len(fired) >= 2  # cleared after each firing, so it re-fires


def test_task_submitter_requires_counter(testbed):
    class NoCounter(BaseThinker):
        @task_submitter(task_type="default")
        def submit(self):
            pass

    thinker = NoCounter(_make_queues(testbed), testbed.theta_login)
    thinker.start()
    thinker.join(timeout=5)
    assert any(isinstance(e, WorkflowError) for e in thinker.agent_errors)


def test_task_submitter_consumes_slots(testbed):
    submitted = []

    class Submitter(BaseThinker):
        def __init__(self, queues, site):
            super().__init__(queues, site, ResourceCounter(2, ["default"]))
            self.resources.allocate("default", 2)

        @task_submitter(task_type="default")
        def submit(self):
            submitted.append(1)
            if len(submitted) >= 2:
                self.done.set()

    thinker = Submitter(_make_queues(testbed), testbed.theta_login)
    thinker.start()
    thinker.done.wait(5)
    thinker.join(timeout=5)
    # Two slots, never released: exactly two submissions.
    assert len(submitted) == 2


def test_full_loop_with_result_processor(testbed):
    """submit -> task server -> result processor -> release -> resubmit."""
    queues = _make_queues(testbed)
    server = LocalTaskServer(
        queues, [MethodSpec(_identity)], testbed.theta_login, n_workers=2
    )
    server.start()

    class Loop(BaseThinker):
        def __init__(self, queues, site):
            super().__init__(queues, site, ResourceCounter(2, ["default"]))
            self.resources.allocate("default", 2)
            self.sent = 0
            self.got = []
            self.lock = threading.Lock()

        @task_submitter(task_type="default")
        def submit(self):
            with self.lock:
                if self.sent >= 6:
                    return
                value = self.sent
                self.sent += 1
            self.queues.send_request("_identity", args=(value,), topic="default")

        @result_processor(topic="default", critical=True)
        def collect(self, result):
            assert result.success
            self.got.append(result.value)
            self.resources.release("default", 1)
            if len(self.got) >= 6:
                self.done.set()

    thinker = Loop(queues, testbed.theta_login)
    with at_site(testbed.theta_login):
        thinker.start()
    assert thinker.done.wait(20)
    thinker.join(timeout=10)
    with at_site(testbed.theta_login):
        queues.send_kill_signal()
    server.join(timeout=10)
    server.stop()
    assert sorted(thinker.got) == [0, 1, 2, 3, 4, 5]
    assert not thinker.agent_errors
