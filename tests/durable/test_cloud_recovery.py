"""Crash recovery: rebuild a journaled FaasCloud from snapshot + replay.

The fresh instance shares the crashed one's delivery fabric (bus, completed
feed, network) — those outlive the process — while every in-memory ledger
(tasks, queues, payload store, registries) is rebuilt from the journal.
Covers the three crash-point edge cases: a crash between the result fsync
and the bus notification, a crash mid-admission (journaled but never
queued), and a double-replayed journal segment.
"""

from __future__ import annotations

import pytest

from repro.durable import (
    FileJournalBackend,
    Journal,
    encode_payload,
    recover_cloud,
)
from repro.exceptions import WorkflowError
from repro.faas.auth import SCOPE_COMPUTE, AuthServer
from repro.faas.cloud import FaasCloud, TaskStatus
from repro.net.fs import FileSystem
from repro.serialize import deserialize, serialize


def _square(x):
    return x * x


class Rig:
    def __init__(self, testbed, compact_every=None):
        self.testbed = testbed
        self.auth = AuthServer()
        identity = self.auth.register_identity("u", "anl")
        self.token = self.auth.issue_token(identity, {SCOPE_COMPUTE})
        self.wal = FileSystem("wal", op_latency=1e-4)
        self.journal = Journal(
            FileJournalBackend(self.wal, "cloud"), compact_every=compact_every
        )
        self.cloud = FaasCloud(
            testbed.faas_cloud,
            testbed.network,
            self.auth,
            testbed.constants,
            journal=self.journal,
        )
        self.endpoint_id = self.cloud.register_endpoint(
            self.token, "theta", testbed.theta_compute
        )
        self.func_id = self.cloud.register_function(self.token, serialize(_square))

    def crash(self) -> FaasCloud:
        """Discard the in-memory instance; rebuild an empty one sharing the
        surviving fabric (bus, completed feed) and the durable journal."""
        fresh = FaasCloud(
            self.testbed.faas_cloud,
            self.testbed.network,
            self.auth,
            self.testbed.constants,
            bus=self.cloud.bus,
            completed=self.cloud._completed,
            journal=self.journal,
        )
        self.cloud = fresh
        return fresh


@pytest.fixture
def rig(testbed):
    return Rig(testbed)


def _submit(rig, value, client="client-1"):
    return rig.cloud.submit(
        rig.token, client, rig.func_id, rig.endpoint_id, serialize(((value,), {}))
    )


def test_recovery_requires_a_journal(testbed):
    auth = AuthServer()
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    with pytest.raises(WorkflowError):
        recover_cloud(cloud)


def test_recovery_rebuilds_every_task_state(rig):
    """Zero lost tasks: WAITING requeued, DISPATCHED re-leased, terminal kept."""
    done = _submit(rig, 2)
    inflight = _submit(rig, 3)
    waiting = _submit(rig, 4)
    dispatched = rig.cloud.fetch_tasks(rig.token, rig.endpoint_id, 2, timeout=1.0)
    assert [d.task_id for d in dispatched] == [done, inflight]
    rig.cloud.report_result(
        rig.token, rig.endpoint_id, done, True, serialize({"value": 4})
    )
    assert rig.cloud.next_completed("client-1", timeout=1.0) == done

    fresh = rig.crash()
    report = recover_cloud(fresh)

    assert report.replayed > 0
    assert report.released == 1  # `inflight` was DISPATCHED at the crash
    assert report.renotified == 1  # `done` was terminal
    assert set(fresh._tasks) == {done, inflight, waiting}
    assert fresh.task(done).status is TaskStatus.SUCCESS
    assert fresh.task(inflight).status is TaskStatus.WAITING
    assert fresh.task(inflight).requeues == 1
    assert fresh.task(waiting).status is TaskStatus.WAITING

    # The re-leased task jumps the queue: it was dispatched first pre-crash.
    redelivered = fresh.fetch_tasks(rig.token, rig.endpoint_id, 10, timeout=1.0)
    assert [d.task_id for d in redelivered] == [inflight, waiting]
    # The adopted argument payload round-trips through the journal.
    (value,), _ = deserialize(fresh.store.read(redelivered[0].args_locator))
    assert value == 3

    # The pre-crash result survives and the fetch path works (satellite
    # regression: results stay fetchable after in-memory state is destroyed).
    status, payload = fresh.get_result_payload(rig.token, done)
    assert status is TaskStatus.SUCCESS
    assert deserialize(payload)["value"] == 4


def test_recovered_task_ids_do_not_collide(rig):
    before = [_submit(rig, n) for n in range(3)]
    fresh = rig.crash()
    recover_cloud(fresh)
    after = _submit(rig, 9)
    assert after not in before
    assert FaasCloud.task_id_index(after) > max(
        FaasCloud.task_id_index(t) for t in before
    )


def test_crash_between_result_write_and_bus_notification(rig):
    """The result record hit the journal but the feed push / bus publish
    never happened.  Recovery renotifies exactly once."""
    task_id = _submit(rig, 5)
    rig.cloud.fetch_tasks(rig.token, rig.endpoint_id, 1, timeout=1.0)
    # Emulate the crash window: append the fsync'd result record by hand —
    # the in-memory transition, feed push, and bus publish all died with
    # the process.  Mirrors the record `report_result` writes.
    rig.journal.append(
        "result",
        task_id=task_id,
        endpoint_id=rig.endpoint_id,
        success=True,
        locator=f"inline:{task_id}-result",
        payload=encode_payload(serialize({"value": 25})),
        exempt=False,
        at=rig.cloud.clock.now(),
    )

    fresh = rig.crash()
    report = recover_cloud(fresh)

    assert report.renotified == 1
    assert report.released == 0  # the terminal record supersedes the lease
    assert fresh.task(task_id).status is TaskStatus.SUCCESS
    # Exactly once into the completed feed: one delivery, then silence.
    assert fresh.next_completed("client-1", timeout=1.0) == task_id
    assert fresh.next_completed("client-1", timeout=0.5) is None
    status, payload = fresh.get_result_payload(rig.token, task_id)
    assert status is TaskStatus.SUCCESS
    assert deserialize(payload)["value"] == 25


def test_crash_mid_admission_enqueues_the_journaled_task(rig):
    """A submit fsync'd to the journal but never enqueued in memory is
    admitted into a WAITING queue by replay — exactly once."""
    task_id = "task-00000041"
    args = serialize(((6,), {}))
    rig.journal.append(
        "submit",
        task_id=task_id,
        func_id=rig.func_id,
        endpoint_id=rig.endpoint_id,
        client_id="client-1",
        locator=f"inline:{task_id}-args",
        args=encode_payload(args),
        tenant="default",
        chaos_key=None,
        submitted_at=rig.cloud.clock.now(),
    )

    fresh = rig.crash()
    recover_cloud(fresh)

    assert fresh.task(task_id).status is TaskStatus.WAITING
    dispatched = fresh.fetch_tasks(rig.token, rig.endpoint_id, 10, timeout=1.0)
    assert [d.task_id for d in dispatched] == [task_id]
    (value,), _ = deserialize(fresh.store.read(dispatched[0].args_locator))
    assert value == 6
    fresh.report_result(
        rig.token, rig.endpoint_id, task_id, True, serialize({"value": 36})
    )
    assert fresh.next_completed("client-1", timeout=1.0) == task_id
    # New admissions never reuse the replayed id.
    assert FaasCloud.task_id_index(_submit(rig, 7)) > 41


def test_double_replay_of_the_same_segment_dedupes(rig):
    done = _submit(rig, 2)
    inflight = _submit(rig, 3)
    rig.cloud.fetch_tasks(rig.token, rig.endpoint_id, 2, timeout=1.0)
    rig.cloud.report_result(
        rig.token, rig.endpoint_id, done, True, serialize({"value": 4})
    )

    fresh = rig.crash()
    first = recover_cloud(fresh)
    assert first.deduped == 0
    again = recover_cloud(fresh)  # same segment, already-populated ledger

    # Every submit and the terminal result hit the first-record-wins check.
    assert again.deduped >= 3
    assert set(fresh._tasks) == {done, inflight}
    assert fresh.task(done).status is TaskStatus.SUCCESS
    # The re-leased task still sits in its queue exactly once.
    redelivered = fresh.fetch_tasks(rig.token, rig.endpoint_id, 10, timeout=1.0)
    assert [d.task_id for d in redelivered] == [inflight]
    status, payload = fresh.get_result_payload(rig.token, done)
    assert status is TaskStatus.SUCCESS and deserialize(payload)["value"] == 4


def test_recovery_replays_snapshot_plus_suffix_after_compaction(testbed):
    rig = Rig(testbed, compact_every=4)
    done = _submit(rig, 2)
    _submit(rig, 3)
    waiting = _submit(rig, 4)
    rig.cloud.fetch_tasks(rig.token, rig.endpoint_id, 1, timeout=1.0)
    rig.cloud.report_result(
        rig.token, rig.endpoint_id, done, True, serialize({"value": 4})
    )
    assert rig.journal.log_bytes() > 0  # a suffix exists beyond the snapshot
    snapshot, _ = rig.journal.records()
    assert snapshot is not None  # compaction actually fired

    fresh = rig.crash()
    report = recover_cloud(fresh)

    assert report.deduped == 0
    assert len(fresh._tasks) == 3
    assert fresh.task(done).status is TaskStatus.SUCCESS
    assert fresh.task(waiting).status is TaskStatus.WAITING
    status, payload = fresh.get_result_payload(rig.token, done)
    assert status is TaskStatus.SUCCESS and deserialize(payload)["value"] == 4
