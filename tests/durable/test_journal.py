"""The write-ahead journal: append/replay round-trips, compaction, backends."""

from __future__ import annotations

import pytest

from repro.durable import (
    FileJournalBackend,
    Journal,
    KVJournalBackend,
    decode_payload,
    encode_payload,
)
from repro.net.fs import FileSystem
from repro.net.kvstore import KVServer
from repro.serialize import Payload


@pytest.fixture
def fs():
    return FileSystem("wal", op_latency=1e-4)


def test_payload_codec_round_trips_data_and_nominal_size():
    payload = Payload(b"\x00\x01binary\xff", 1_000_000)  # Blob-style padding
    doc = encode_payload(payload)
    back = decode_payload(doc)
    assert back.data == payload.data
    assert back.nominal_size == 1_000_000
    # JSON-safe: only str/int values survive a dumps/loads cycle.
    import json

    assert decode_payload(json.loads(json.dumps(doc))).data == payload.data


def test_fs_append_accumulates_bytes_and_nominal_size(fs):
    fs.append("a.log", b"one\n")
    total = fs.append("a.log", b"two\n", nominal_size=100)
    assert fs.read("a.log") == b"one\ntwo\n"
    assert total == 4 + 100
    assert fs.size("a.log") == 104


def test_fs_append_rejects_non_bytes(fs):
    with pytest.raises(TypeError):
        fs.append("a.log", "text")  # type: ignore[arg-type]


def test_journal_append_and_records_round_trip(fs):
    journal = Journal(FileJournalBackend(fs, "j"))
    journal.append("submit", task_id="t-1", n=1)
    journal.append("result", task_id="t-1", success=True)
    snapshot, records = journal.records()
    assert snapshot is None
    assert records == [
        {"type": "submit", "task_id": "t-1", "n": 1},
        {"type": "result", "task_id": "t-1", "success": True},
    ]
    assert journal.appends == 2
    assert journal.log_bytes() > 0


def test_journal_snapshot_compacts_the_log(fs):
    journal = Journal(FileJournalBackend(fs, "j"))
    for n in range(5):
        journal.append("submit", n=n)
    journal.snapshot({"tasks": [0, 1, 2, 3, 4]})
    assert journal.log_bytes() == 0
    journal.append("submit", n=5)
    snapshot, records = journal.records()
    assert snapshot == {"tasks": [0, 1, 2, 3, 4]}
    assert records == [{"type": "submit", "n": 5}]


def test_journal_auto_compaction_uses_the_snapshot_provider(fs):
    journal = Journal(FileJournalBackend(fs, "j"), compact_every=3)
    state = {"applied": 0}
    journal.set_snapshot_provider(lambda: dict(state))
    for n in range(7):
        journal.append("submit", n=n)
        state["applied"] = n + 1
    snapshot, records = journal.records()
    # Compaction runs *before* the append that crosses the threshold: the
    # caller has not applied that record yet, so the snapshot cannot cover
    # it and truncating it would lose it.  Two compactions fire (before the
    # 4th and 7th appends); the final snapshot covers records 0-5 and the
    # log holds only record 6 — together the full stream.
    assert snapshot == {"applied": 6}
    assert [r["n"] for r in records] == [6]


def test_journal_auto_compaction_loses_no_records(fs):
    """Snapshot + suffix reconstructs every appended record at any point."""
    journal = Journal(FileJournalBackend(fs, "j"), compact_every=2)
    applied: list[int] = []
    journal.set_snapshot_provider(lambda: {"applied": list(applied)})
    for n in range(9):
        journal.append("submit", n=n)
        applied.append(n)  # caller applies after the durable append
        snapshot, records = journal.records()
        replayed = (snapshot["applied"] if snapshot else []) + [
            r["n"] for r in records
        ]
        assert replayed == list(range(n + 1))


def test_journal_compact_every_validation(fs):
    with pytest.raises(ValueError):
        Journal(FileJournalBackend(fs, "j"), compact_every=0)


def test_kv_backend_round_trip_truncate_and_floor():
    from repro.net.topology import Network, Site

    network = Network()
    site = Site("kv-site")
    network.add_site(site)
    kv = KVServer(site, name="wal-kv")
    journal = Journal(KVJournalBackend(kv, "j"))
    journal.append("submit", n=0)
    journal.append("submit", n=1)
    snapshot, records = journal.records()
    assert snapshot is None and [r["n"] for r in records] == [0, 1]
    journal.snapshot({"upto": 2})
    # Truncation raises the floor: old segments are gone, new ones append.
    assert journal.log_bytes() == 0
    journal.append("submit", n=2)
    snapshot, records = journal.records()
    assert snapshot == {"upto": 2}
    assert [r["n"] for r in records] == [2]


def test_journal_appends_are_deterministic_bytes(fs):
    a = Journal(FileJournalBackend(fs, "a"))
    b = Journal(FileJournalBackend(fs, "b"))
    a.append("submit", z=1, a=2, m=3)
    b.append("submit", a=2, m=3, z=1)  # kwarg order must not matter
    assert fs.read("a.log") == fs.read("b.log")
