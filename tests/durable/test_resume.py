"""Campaign checkpoint/resume: journaled decision state, no recomputation,
bit-identical ledgers.

Unit half: :class:`CampaignCheckpoint` round-trips, and both application
Thinkers rebuild their decision state from snapshot + events.  Integration
half: a killed-then-resumed moldesign campaign recomputes nothing and
hashes its final ledger bit-identically to an uninterrupted control run.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.apps.finetuning.config import FineTuneConfig
from repro.apps.finetuning.thinker import (
    FineTuneThinker,
    _encode_structure,
)
from repro.apps.moldesign.config import MolDesignConfig
from repro.apps.moldesign.thinker import MolDesignThinker
from repro.core.queues import ColmenaQueues
from repro.durable import (
    CampaignCheckpoint,
    FileJournalBackend,
    Journal,
    ledger_digest,
    run_resumable_moldesign,
)
from repro.ml.schnet import RbfBasis, SchnetSurrogate
from repro.net.fs import FileSystem
from repro.net.kvstore import KVServer
from repro.sim.chemistry import MoleculeLibrary
from repro.sim.water import make_water_cluster


@pytest.fixture
def checkpoint():
    wal = FileSystem("campaign-wal", op_latency=1e-4)
    return CampaignCheckpoint(Journal(FileJournalBackend(wal, "campaign")))


def _make_queues(testbed):
    return ColmenaQueues(
        KVServer(testbed.theta_login),
        testbed.network,
        topics=["simulate", "train", "infer", "sample"],
    )


def _make_md_thinker(testbed, **overrides):
    defaults = dict(
        n_molecules=50,
        n_initial=4,
        max_simulations=10,
        retrain_after=4,
        n_ensemble=2,
        inference_chunks=2,
    )
    defaults.update(overrides)
    config = MolDesignConfig(**defaults)
    library = MoleculeLibrary(config.n_molecules, seed=0)
    return MolDesignThinker(
        _make_queues(testbed), testbed.theta_login, config, library, n_cpu_slots=2
    )


# -- checkpoint wrapper ------------------------------------------------------------


def test_checkpoint_note_save_load_round_trip(checkpoint):
    checkpoint.note("sim_result", molecule=3, ip=15.5, wall_time=60.0)
    checkpoint.note("retrain", batch=1)
    snapshot, events = checkpoint.load_state()
    assert snapshot is None
    assert [e["type"] for e in events] == ["sim_result", "retrain"]

    checkpoint.save_state({"database": {"3": 15.5}})
    checkpoint.note("sim_result", molecule=7, ip=12.0, wall_time=45.0)
    snapshot, events = checkpoint.load_state()
    assert snapshot == {"database": {"3": 15.5}}
    assert [e["molecule"] for e in events] == [7]


# -- moldesign thinker restore -----------------------------------------------------


def test_md_restore_folds_snapshot_and_events(testbed):
    thinker = _make_md_thinker(testbed)
    snapshot = {
        "database": {"3": 20.0},
        "cumulative_sim_time": 60.0,
        "found_timeline": [[0.0, 0], [60.0, 1]],
        "since_retrain": 1,
        "batch_id": 0,
        "ml_makespans": [],
    }
    events = [
        {"type": "sim_result", "molecule": 7, "ip": 5.0, "wall_time": 40.0},
        {"type": "sim_result", "molecule": 7, "ip": 5.0, "wall_time": 40.0},  # dup
        {"type": "retrain", "batch": 1},
        {"type": "sim_result", "molecule": 9, "ip": 30.0, "wall_time": 50.0},
    ]
    thinker.restore_state(snapshot, events)

    assert thinker.database == {3: 20.0, 7: 5.0, 9: 30.0}
    # The duplicate journal line (crash inside the append window) folded away.
    assert thinker._sims_completed == 3
    assert thinker._sims_submitted == 3
    assert thinker._since_retrain == 1  # reset by retrain, then one result
    assert thinker._batch_id == 1
    assert thinker._cumulative_sim_time == pytest.approx(150.0)
    assert thinker.found_timeline[-1][1] == sum(
        1 for ip in thinker.database.values() if ip > thinker.threshold
    )
    assert not thinker.done.is_set()


def test_md_restore_marks_finished_campaign_done(testbed):
    thinker = _make_md_thinker(testbed, max_simulations=3, n_initial=2)
    events = [
        {"type": "sim_result", "molecule": m, "ip": 1.0, "wall_time": 10.0}
        for m in (0, 1, 2)
    ]
    thinker.restore_state(None, events)
    assert thinker.done.is_set()


def test_md_export_restore_round_trip_preserves_the_ledger(testbed):
    thinker = _make_md_thinker(testbed)
    thinker.database = {4: 11.0, 2: 19.5}
    thinker._cumulative_sim_time = 100.0
    thinker.found_timeline = [(0.0, 0), (100.0, 1)]
    state = thinker.export_state()

    twin = _make_md_thinker(testbed)
    twin.restore_state(state, [])
    assert twin.database == thinker.database
    assert ledger_digest(twin.database, twin.threshold) == ledger_digest(
        thinker.database, thinker.threshold
    )


# -- finetuning thinker restore ----------------------------------------------------


def _make_ft_thinker(testbed, **overrides):
    defaults = dict(
        n_waters=2,
        n_pretrain=10,
        target_new_structures=6,
        retrain_after=2,
        n_ensemble=2,
        uncertainty_batch=4,
        inference_batch=2,
        uncertainty_pool_size=2,
        n_rbf_centers=6,
        hidden_layers=(8,),
    )
    defaults.update(overrides)
    config = FineTuneConfig(**defaults)
    models = [
        SchnetSurrogate(RbfBasis(n_centers=6), hidden=(8,), seed=i)
        for i in range(config.n_ensemble)
    ]
    return FineTuneThinker(
        _make_queues(testbed), testbed.theta_login, config, models, n_cpu_slots=4
    )


def test_ft_export_restore_round_trip(testbed):
    thinker = _make_ft_thinker(testbed)
    structures = [make_water_cluster(2, seed=i) for i in range(3)]
    thinker.new_structures = [
        (s, float(i), np.zeros_like(s.positions)) for i, s in enumerate(structures)
    ]
    thinker._since_retrain = 1
    thinker._train_batch = 2
    state = thinker.export_state()

    twin = _make_ft_thinker(testbed)
    event = {
        "type": "dft_result",
        "structure": _encode_structure(make_water_cluster(2, seed=9)),
        "energy": 4.5,
        "forces": np.zeros((6, 3)).tolist(),
    }
    twin.restore_state(state, [event, {"type": "retrain", "batch": 3}])

    assert len(twin.new_structures) == 4
    assert twin._since_retrain == 0
    assert twin._train_batch == 3
    restored, energy, forces = twin.new_structures[0]
    assert np.allclose(restored.positions, structures[0].positions)
    assert energy == 0.0 and forces.shape == structures[0].positions.shape
    assert not twin.done.is_set()


def test_ft_restore_marks_reached_target_done(testbed):
    thinker = _make_ft_thinker(testbed, target_new_structures=2)
    events = [
        {
            "type": "dft_result",
            "structure": _encode_structure(make_water_cluster(2, seed=i)),
            "energy": float(i),
            "forces": np.zeros((6, 3)).tolist(),
        }
        for i in range(2)
    ]
    thinker.restore_state(None, events)
    assert thinker.done.is_set()
    assert thinker.progress[-1][1] == 2


# -- end-to-end crash/resume -------------------------------------------------------


def test_resumable_moldesign_is_exactly_once_and_deterministic():
    config = MolDesignConfig(
        n_molecules=60,
        n_initial=4,
        max_simulations=10,
        retrain_after=10_000,  # determinism regime: no schedule-driven reorder
        sim_duration=2.0,
    )
    report = run_resumable_moldesign(
        "funcx+globus",
        config,
        seed=0,
        crash_after_results=4,
        verify_determinism=True,
    )
    # No recomputation: crashed consumed 4, the resume ran exactly the rest.
    assert report.crashed_simulations == 4
    assert report.resumed_simulations == config.max_simulations - 4
    assert report.n_simulated == config.max_simulations
    # Bit-identical decision ledger vs the uninterrupted control run.
    assert report.uninterrupted_digest is not None
    assert report.deterministic, (report.digest, report.uninterrupted_digest)


def test_resumable_moldesign_validates_crash_point():
    with pytest.raises(ValueError):
        run_resumable_moldesign(
            config=MolDesignConfig(max_simulations=10), crash_after_results=10
        )
