"""Autoscaler: demand-driven grows, idle shrinks, scale-to-zero, doorbell wake."""

from __future__ import annotations

import pytest

from repro.elastic import (
    AutoscalePolicy,
    Autoscaler,
    ElasticWorkerPool,
    render_pool_table,
)
from repro.faas import SCOPE_COMPUTE, AuthServer, FaasClient, FaasCloud, FaasEndpoint
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.observe import MetricsRegistry, set_metrics
from repro.resources import WorkerPool

QUICK = AutoscalePolicy(
    min_workers=0,
    max_workers=4,
    target_tasks_per_worker=1.0,
    interval=0.5,
    cooldown=0.5,
    idle_grace=2.0,
    zero_grace=4.0,
)


def _sim(duration=2.0):
    get_clock().sleep(duration)
    return duration


def _noop(index):
    return index


@pytest.fixture
def rig(testbed):
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("u", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = ElasticWorkerPool(testbed.theta_compute, 0, name="auto-pool", poll_interval=0.1)
    endpoint = FaasEndpoint("auto", cloud, token, testbed.theta_login, pool).start()
    client = FaasClient(cloud, token, site=testbed.theta_login)
    scaler = Autoscaler(endpoint, policy=QUICK)
    yield testbed, endpoint, client, scaler
    scaler.stop()
    client.close()
    endpoint.stop()


def _wait_until(predicate, timeout=30.0):
    deadline = get_clock().now() + timeout
    while not predicate():
        if get_clock().now() > deadline:
            return False
        get_clock().sleep(0.1)
    return True


def test_requires_elastic_pool(testbed):
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("w", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 1, name="static-pool")
    endpoint = FaasEndpoint("static", cloud, token, testbed.theta_login, pool).start()
    try:
        with pytest.raises(TypeError, match="ElasticWorkerPool"):
            Autoscaler(endpoint)
    finally:
        endpoint.stop()


def test_burst_scales_up_and_completes(rig):
    testbed, endpoint, client, scaler = rig
    scaler.start()
    with at_site(testbed.theta_login):
        futures = [
            client.run(_sim, endpoint.endpoint_id, 2.0) for _ in range(8)
        ]
    assert all(f.result(timeout=120) == 2.0 for f in futures)
    grows = [d for d in scaler.decisions if d.action in ("grow", "wake")]
    assert grows, scaler.decisions
    assert max(d.workers for d in grows) > 1  # it actually scaled out


def test_idle_pool_shrinks_to_zero(rig):
    testbed, endpoint, client, scaler = rig
    scaler.start()
    with at_site(testbed.theta_login):
        future = client.run(_noop, endpoint.endpoint_id, 1)
    assert future.result(timeout=60) == 1
    # No demand: grace periods elapse and the pool releases everything.
    assert _wait_until(lambda: scaler.pool.size == 0, timeout=60.0)
    actions = [d.action for d in scaler.decisions]
    assert "to_zero" in actions


def test_doorbell_wakes_dormant_pool_and_records_ttft(rig):
    registry = MetricsRegistry()
    set_metrics(registry)
    testbed, endpoint, client, scaler = rig
    try:
        scaler.start()
        with at_site(testbed.theta_login):
            first = client.run(_noop, endpoint.endpoint_id, 1)
        assert first.result(timeout=60) == 1
        assert _wait_until(lambda: scaler.pool.size == 0, timeout=60.0)
        # Submission against the dormant endpoint rings the bus doorbell.
        with at_site(testbed.theta_login):
            second = client.run(_noop, endpoint.endpoint_id, 2)
        assert second.result(timeout=60) == 2
        assert "wake" in [d.action for d in scaler.decisions]
        assert _wait_until(lambda: len(scaler.wake_latencies) >= 1, timeout=30.0)
        assert all(lat >= 0.0 for lat in scaler.wake_latencies)
        assert registry.counter_total("autoscale.wakes") >= 1
    finally:
        set_metrics(None)


def test_decisions_counter_by_action(rig):
    registry = MetricsRegistry()
    set_metrics(registry)
    testbed, endpoint, client, scaler = rig
    try:
        scaler.start()
        with at_site(testbed.theta_login):
            futures = [client.run(_noop, endpoint.endpoint_id, i) for i in range(4)]
        assert all(f.result(timeout=60) is not None for f in futures)
        assert _wait_until(lambda: len(scaler.decisions) >= 1, timeout=30.0)
        assert registry.counter_total("autoscale.decisions") == len(scaler.decisions)
    finally:
        set_metrics(None)


def test_render_pool_table_lists_every_endpoint(rig):
    testbed, endpoint, client, scaler = rig
    table = render_pool_table([scaler])
    assert "endpoint" in table and "auto" in table
    assert "last decision" in table


def test_policy_validation():
    with pytest.raises(ValueError):
        AutoscalePolicy(min_workers=-1)
    with pytest.raises(ValueError):
        AutoscalePolicy(min_workers=5, max_workers=2)
    with pytest.raises(ValueError):
        AutoscalePolicy(target_tasks_per_worker=0.0)
    with pytest.raises(ValueError):
        AutoscalePolicy(interval=0.0)
