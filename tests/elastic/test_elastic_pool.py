"""ElasticWorkerPool: grow/drain lifecycle, node accounting, exactly-once."""

from __future__ import annotations

import threading

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.chaos.plan import FaultInjector, FaultPlan, FaultSpec, set_injector
from repro.chaos.policy import RetryPolicy
from repro.elastic import ElasticWorkerPool
from repro.net.clock import get_clock
from repro.net.topology import FixedLatency, Site
from repro.observe import MetricsRegistry, set_metrics
from repro.resources import BatchScheduler


@pytest.fixture
def site():
    return Site("hpc", trust_group="hpc")


def _wait_until(predicate, timeout=10.0):
    deadline = get_clock().now() + timeout
    while not predicate():
        if get_clock().now() > deadline:
            return False
        get_clock().sleep(0.1)
    return True


def test_grow_and_drain_change_size(site):
    pool = ElasticWorkerPool(site, 0, name="ep-size", poll_interval=0.1).start()
    try:
        assert pool.size == 0
        pool.grow(3)
        assert pool.size == 3
        assert _wait_until(lambda: pool.online_count == 3)
        assert pool.drain(2) == 2
        assert _wait_until(lambda: pool.online_count == 1)
        assert pool.size == 1
    finally:
        pool.stop()
    assert pool.size == 0


def test_executes_work_and_counts_busy_seconds(site):
    pool = ElasticWorkerPool(site, 2, name="ep-work", poll_interval=0.1).start()
    done = threading.Event()
    results = []
    try:
        for i in range(4):
            pool.submit(lambda i=i: results.append(i))
        pool.submit(done.set)
        assert done.wait(5)
        assert sorted(results) == [0, 1, 2, 3]
    finally:
        pool.stop()
    assert pool.tasks_completed >= 4


def test_scheduler_nodes_follow_pool_size(site):
    scheduler = BatchScheduler(site, total_nodes=6, queue_delay=FixedLatency(0.05))
    pool = ElasticWorkerPool(
        site, 0, name="ep-nodes", scheduler=scheduler, poll_interval=0.1
    ).start()
    try:
        pool.grow(4)
        assert _wait_until(lambda: scheduler.free_nodes == 2)
        pool.drain(4)
        # Scale-to-zero: the whole allocation is handed back.
        assert _wait_until(lambda: scheduler.free_nodes == 6)
        # Scale back up from zero re-provisions a fresh job.
        pool.grow(1)
        assert _wait_until(lambda: scheduler.free_nodes == 5)
    finally:
        pool.stop()
    assert scheduler.free_nodes == 6


def test_drained_worker_leaves_queued_tasks_for_survivors(site):
    pool = ElasticWorkerPool(site, 2, name="ep-requeue", poll_interval=0.1).start()
    release = threading.Event()
    ran = []
    try:
        # Occupy both workers, then queue more work behind them.
        for _ in range(2):
            pool.submit(lambda: release.wait(5))
        get_clock().sleep(1.0)
        for i in range(3):
            pool.submit(lambda i=i: ran.append(i))
        # Retire one busy worker: its queued tasks must not leave with it.
        assert pool.drain(1) == 1
        release.set()
        assert _wait_until(lambda: len(ran) == 3)
        assert sorted(ran) == [0, 1, 2]
    finally:
        pool.stop()


def test_stop_without_drain_returns_pending_closures(site):
    pool = ElasticWorkerPool(site, 1, name="ep-pending", poll_interval=0.1).start()
    release = threading.Event()
    pool.submit(lambda: release.wait(5))
    get_clock().sleep(1.0)
    for _ in range(3):
        pool.submit(lambda: None)
    release.set()
    pending = pool.stop(drain=False)
    # The blocker was in flight; some or all of the queued three come back.
    assert 0 <= len(pending) <= 3
    total_run = pool.tasks_completed + len(pending)
    assert total_run == 4


def test_stop_with_drain_runs_backlog_even_from_zero_workers(site):
    pool = ElasticWorkerPool(site, 0, name="ep-zero-drain", poll_interval=0.1).start()
    ran = []
    pool.submit(lambda: ran.append(1))
    pool.submit(lambda: ran.append(2))
    assert pool.stop() == []
    assert sorted(ran) == [1, 2]


def test_max_workers_caps_grow(site):
    pool = ElasticWorkerPool(
        site, 0, name="ep-cap", max_workers=2, poll_interval=0.1
    ).start()
    try:
        pool.grow(5)
        assert pool.size == 2
    finally:
        pool.stop()


def test_grow_reclaims_pending_retirements(site):
    pool = ElasticWorkerPool(site, 3, name="ep-reclaim", poll_interval=0.1).start()
    try:
        assert _wait_until(lambda: pool.online_count == 3)
        pool.drain(2)
        # Before the retirements land, grow cancels them instead of spawning.
        pool.grow(2)
        assert pool.size == 3
    finally:
        pool.stop()


def test_mark_wake_records_time_to_first_task(site):
    registry = MetricsRegistry()
    set_metrics(registry)
    pool = ElasticWorkerPool(site, 0, name="ep-ttft", poll_interval=0.1).start()
    done = threading.Event()
    try:
        pool.submit(done.set)
        pool.mark_wake()
        pool.grow(1)
        assert done.wait(5)
        assert _wait_until(lambda: len(pool.wake_latencies) == 1)
        assert pool.wake_latencies[0] >= 0.0
    finally:
        pool.stop()
        set_metrics(None)


def test_node_seconds_accumulate(site):
    pool = ElasticWorkerPool(site, 2, name="ep-nodesec", poll_interval=0.1).start()
    try:
        assert _wait_until(lambda: pool.online_count == 2)
        get_clock().sleep(3.0)
        assert pool.node_seconds_total() >= 4.0  # 2 workers x >=2s each
    finally:
        pool.stop()
    assert pool.node_seconds >= 4.0


def test_grow_requires_running_pool(site):
    pool = ElasticWorkerPool(site, 0, name="ep-stopped")
    with pytest.raises(RuntimeError):
        pool.grow(1)


def test_provision_retries_through_injected_fault(site):
    # First attempt of every worker stalls then fails; the retry succeeds.
    registry = MetricsRegistry()
    set_metrics(registry)
    spec = FaultSpec(
        "scheduler.provision", "stall", rate=1.0, delay=0.2, match={"attempt": 0}
    )
    set_injector(FaultInjector(FaultPlan.build(0, (spec,))))
    scheduler = BatchScheduler(site, total_nodes=4, queue_delay=FixedLatency(0.05))
    pool = ElasticWorkerPool(
        site,
        0,
        name="ep-chaos",
        scheduler=scheduler,
        provision_retry=RetryPolicy(max_attempts=3, base_delay=0.1, max_delay=0.5),
        poll_interval=0.1,
    ).start()
    done = threading.Event()
    try:
        pool.submit(done.set)
        pool.grow(1)
        assert done.wait(10)  # capacity arrived despite the fault
        assert registry.counter_total("autoscale.provision_retries") == 1
        assert registry.counter_total("autoscale.provision_abandoned") == 0
    finally:
        pool.stop()
        set_injector(None)
        set_metrics(None)
    assert scheduler.free_nodes == 4


def test_provision_abandoned_after_retries_exhausted(site):
    registry = MetricsRegistry()
    set_metrics(registry)
    # Every attempt fails: the worker gives up and departs cleanly.
    spec = FaultSpec(
        "scheduler.provision", "dead", rate=1.0, occurrences=(0, 1, 2, 3)
    )
    set_injector(FaultInjector(FaultPlan.build(0, (spec,))))
    pool = ElasticWorkerPool(
        site,
        0,
        name="ep-abandon",
        scheduler=BatchScheduler(site, total_nodes=2, queue_delay=FixedLatency(0.01)),
        provision_retry=RetryPolicy(max_attempts=2, base_delay=0.05, max_delay=0.1),
        poll_interval=0.1,
    ).start()
    ran = []
    try:
        pool.submit(lambda: ran.append(1))
        pool.grow(1)
        assert _wait_until(lambda: pool.size == 0)
        assert registry.counter_total("autoscale.provision_abandoned") == 1
        assert not ran  # the task is still queued, not lost ...
    finally:
        set_injector(None)
        pool.stop()  # ... and the drain-on-stop runs it.
        set_metrics(None)
    assert ran == [1]


# -- property: grow/drain/submit interleavings are exactly-once ----------------

_ops = st.lists(
    st.one_of(
        st.tuples(st.just("grow"), st.integers(1, 3)),
        st.tuples(st.just("drain"), st.integers(1, 3)),
        st.tuples(st.just("submit"), st.integers(1, 4)),
    ),
    min_size=1,
    max_size=12,
)


@settings(max_examples=20, deadline=None)
@given(ops=_ops)
def test_interleaved_ops_run_every_task_exactly_once(ops):
    site = Site("hpc-prop", trust_group="hpc")
    pool = ElasticWorkerPool(site, 1, name="ep-prop", poll_interval=0.05).start()
    lock = threading.Lock()
    ran: list[int] = []
    submitted = 0
    try:
        for op, n in ops:
            if op == "grow":
                pool.grow(n)
            elif op == "drain":
                pool.drain(n)
            else:
                for _ in range(n):
                    task_id = submitted
                    submitted += 1

                    def work(task_id=task_id):
                        with lock:
                            ran.append(task_id)

                    pool.submit(work)
    finally:
        pending = pool.stop()  # graceful drain finishes the backlog
    assert pending == []
    assert sorted(ran) == list(range(submitted))
