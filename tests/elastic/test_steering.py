"""SteeringPolicy/apportion: deterministic task-ratio re-balancing."""

from __future__ import annotations

import pytest

from repro.chaos.campaign import run_cell
from repro.elastic import ElasticWorkerPool, SteeringPolicy, apportion
from repro.net.clock import get_clock
from repro.net.topology import Site


def _wait_until(predicate, timeout=10.0):
    deadline = get_clock().now() + timeout
    while not predicate():
        if get_clock().now() > deadline:
            return False
        get_clock().sleep(0.1)
    return True


# -- apportion ----------------------------------------------------------------


def test_apportion_splits_exactly():
    assert apportion({"cpu": 1.0, "gpu": 2.0}, 6) == {"cpu": 2, "gpu": 4}
    assert apportion({"cpu": 1.0, "gpu": 1.0}, 5) == {"cpu": 3, "gpu": 2}
    assert apportion({"a": 1.0}, 7) == {"a": 7}


def test_apportion_zero_weight_gets_zero():
    shares = apportion({"cpu": 0.0, "gpu": 1.0}, 4)
    assert shares == {"cpu": 0, "gpu": 4}


def test_apportion_tie_break_is_name_order():
    # Equal remainders: the alphabetically-first name wins the leftover slot.
    assert apportion({"a": 1.0, "b": 1.0}, 3) == {"a": 2, "b": 1}


def test_apportion_always_sums_to_total():
    weights = {"a": 0.7, "b": 1.3, "c": 2.1}
    for total in range(0, 25):
        shares = apportion(weights, total)
        assert sum(shares.values()) == total


def test_apportion_rejects_bad_inputs():
    with pytest.raises(ValueError):
        apportion({"a": -1.0, "b": 2.0}, 4)
    with pytest.raises(ValueError):
        apportion({"a": 0.0}, 4)
    with pytest.raises(ValueError):
        apportion({"a": 1.0}, -1)


# -- SteeringPolicy -----------------------------------------------------------


@pytest.fixture
def pools():
    site_cpu = Site("steer-cpu", trust_group="hpc")
    site_gpu = Site("steer-gpu", trust_group="hpc")
    cpu = ElasticWorkerPool(site_cpu, 4, name="st-cpu", poll_interval=0.1).start()
    gpu = ElasticWorkerPool(site_gpu, 2, name="st-gpu", poll_interval=0.1).start()
    yield {"cpu": cpu, "gpu": gpu}
    cpu.stop()
    gpu.stop()


def test_set_ratio_moves_workers(pools):
    policy = SteeringPolicy(pools, total_workers=6)
    targets = policy.set_ratio({"cpu": 1.0, "gpu": 2.0}, reason="retrain")
    assert targets == {"cpu": 2, "gpu": 4}
    assert policy.sizes() == {"cpu": 2, "gpu": 4}
    assert _wait_until(
        lambda: pools["cpu"].online_count == 2 and pools["gpu"].online_count == 4
    )
    assert len(policy.events) == 1
    event = policy.events[0]
    assert event.reason == "retrain"
    assert event.moved == 2  # cpu drained two workers for gpu


def test_set_ratio_back_and_forth_is_stable(pools):
    policy = SteeringPolicy(pools, total_workers=6)
    policy.set_ratio({"cpu": 1.0, "gpu": 2.0})
    policy.set_ratio({"cpu": 3.0, "gpu": 1.0})
    # apportion(3:1, 6): quotas 4.5/1.5, equal remainders, name order wins.
    assert policy.sizes() == {"cpu": 5, "gpu": 1}
    # Same weights again: a no-op move, still recorded.
    targets = policy.set_ratio({"cpu": 3.0, "gpu": 1.0})
    assert targets == {"cpu": 5, "gpu": 1}
    assert policy.events[-1].moved == 0
    assert len(policy.events) == 3


def test_set_ratio_missing_pool_weight_means_zero(pools):
    policy = SteeringPolicy(pools, total_workers=6)
    targets = policy.set_ratio({"gpu": 1.0})
    assert targets == {"cpu": 0, "gpu": 6}
    assert policy.sizes()["cpu"] == 0


def test_set_ratio_rejects_unknown_pool(pools):
    policy = SteeringPolicy(pools, total_workers=6)
    with pytest.raises(KeyError, match="unknown steering pools"):
        policy.set_ratio({"cpu": 1.0, "tpu": 1.0})


def test_steering_policy_validation(pools):
    with pytest.raises(ValueError):
        SteeringPolicy({}, total_workers=4)
    with pytest.raises(ValueError):
        SteeringPolicy(pools, total_workers=0)


def test_no_tasks_lost_across_a_steer(pools):
    import threading

    lock = threading.Lock()
    ran = []
    policy = SteeringPolicy(pools, total_workers=6)
    for i in range(12):
        pools["cpu"].submit(lambda i=i: (get_clock().sleep(0.3), ran.append(i)))
    policy.set_ratio({"cpu": 1.0, "gpu": 5.0}, reason="mid-flight steer")
    assert _wait_until(lambda: len(ran) == 12, timeout=60.0)
    assert sorted(ran) == list(range(12))


# -- provision_delay chaos mode ----------------------------------------------


def test_provision_delay_cell_passes_and_reconciles():
    result = run_cell("provision_delay", "faas-file", seed=0, n_tasks=6)
    assert result.passed, result.failures
    assert result.fires >= 1
    assert result.counters["autoscale.provision_retries"] == result.fires
    assert result.counters["autoscale.provision_abandoned"] == 0


def test_provision_delay_digest_is_deterministic():
    first = run_cell("provision_delay", "faas-file", seed=0, n_tasks=6)
    second = run_cell("provision_delay", "faas-file", seed=0, n_tasks=6)
    assert first.passed, first.failures
    assert first.digest == second.digest
    assert first.fires == second.fires
