"""Tests for the identity/token layer."""

import pytest

from repro.exceptions import AuthenticationError, AuthorizationError
from repro.faas.auth import SCOPE_COMPUTE, SCOPE_TRANSFER, AuthServer
from repro.net.clock import get_clock


@pytest.fixture
def auth():
    return AuthServer(clock=get_clock())


@pytest.fixture
def identity(auth):
    return auth.register_identity("ward", "anl.gov")


def test_identity_string(identity):
    assert str(identity) == "ward@anl.gov"


def test_issue_and_validate(auth, identity):
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    assert auth.validate(token) == identity
    assert auth.validate(token, SCOPE_COMPUTE) == identity


def test_unknown_identity_rejected(auth):
    from repro.faas.auth import Identity

    with pytest.raises(AuthenticationError):
        auth.issue_token(Identity("ghost", "nowhere"), {SCOPE_COMPUTE})


def test_missing_credential(auth):
    with pytest.raises(AuthenticationError):
        auth.validate(None)


def test_unknown_token_rejected(auth, identity):
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    other = AuthServer(clock=get_clock())
    with pytest.raises(AuthenticationError):
        other.validate(token)


def test_scope_enforcement(auth, identity):
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    with pytest.raises(AuthorizationError):
        auth.validate(token, SCOPE_TRANSFER)


def test_expiry_on_virtual_clock(auth, identity):
    token = auth.issue_token(identity, {SCOPE_COMPUTE}, lifetime=1.0)
    auth.validate(token)
    get_clock().sleep(2.0)
    with pytest.raises(AuthenticationError):
        auth.validate(token)


def test_revocation(auth, identity):
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    auth.revoke(token)
    with pytest.raises(AuthenticationError):
        auth.validate(token)


def test_delegation_narrows_scopes(auth, identity):
    parent = auth.issue_token(identity, {SCOPE_COMPUTE, SCOPE_TRANSFER})
    child = auth.delegate(parent, {SCOPE_TRANSFER})
    assert auth.validate(child, SCOPE_TRANSFER) == identity
    with pytest.raises(AuthorizationError):
        auth.validate(child, SCOPE_COMPUTE)


def test_delegation_cannot_broaden(auth, identity):
    parent = auth.issue_token(identity, {SCOPE_COMPUTE})
    with pytest.raises(AuthorizationError):
        auth.delegate(parent, {SCOPE_TRANSFER})


def test_delegated_expiry_capped_by_parent(auth, identity):
    parent = auth.issue_token(identity, {SCOPE_COMPUTE}, lifetime=1.0)
    child = auth.delegate(parent, {SCOPE_COMPUTE}, lifetime=10_000.0)
    assert child.expires_at <= parent.expires_at


def test_revocation_cascades_to_dependents(auth, identity):
    parent = auth.issue_token(identity, {SCOPE_COMPUTE})
    child = auth.delegate(parent, {SCOPE_COMPUTE})
    grandchild = auth.delegate(child, {SCOPE_COMPUTE})
    auth.revoke(parent)
    for token in (parent, child, grandchild):
        with pytest.raises(AuthenticationError):
            auth.validate(token)


def test_revocation_without_cascade(auth, identity):
    parent = auth.issue_token(identity, {SCOPE_COMPUTE})
    child = auth.delegate(parent, {SCOPE_COMPUTE})
    auth.revoke(parent, cascade=False)
    assert auth.validate(child) == identity
