"""Bus-driven task/result delivery, the poll fallback, and client shutdown.

Covers the event-driven wiring of :mod:`repro.bus` into the FaaS fabric:
doorbell-driven fetches (no idle polling), polling-only operation when the
bus is disabled, pause/resume interaction with subscriptions, and the
executor/client shutdown semantics for still-pending futures.
"""

from dataclasses import replace

import pytest

from repro.exceptions import WorkflowError
from repro.faas import (
    SCOPE_COMPUTE,
    AuthServer,
    FaasClient,
    FaasCloud,
    FaasEndpoint,
    FaasExecutor,
)
from repro.faas.cloud import task_topic
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.observe import MetricsRegistry, set_metrics
from repro.resources import WorkerPool


def _add(a, b):
    return a + b


@pytest.fixture
def metrics():
    registry = MetricsRegistry()
    set_metrics(registry)
    return registry


def _rig(testbed, *, use_bus=True):
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 3, name="bus-pool")
    endpoint = FaasEndpoint(
        "theta", cloud, token, testbed.theta_login, pool, use_bus=use_bus
    ).start()
    client = FaasClient(cloud, token, site=testbed.theta_login, use_bus=use_bus)
    return cloud, endpoint, client


def test_bus_delivery_completes_tasks_without_idle_polls(testbed, metrics):
    cloud, endpoint, client = _rig(testbed)
    try:
        with at_site(testbed.theta_login):
            futures = [
                client.run(_add, endpoint.endpoint_id, i, b=1) for i in range(4)
            ]
        assert [f.result(timeout=60) for f in futures] == [1, 2, 3, 4]
    finally:
        client.close()
        endpoint.stop()
    # Every fetch was doorbell-driven, so none came back empty; results
    # arrived as bus notifications, not poll hits.
    assert metrics.counter_total("endpoint.polls_empty") == 0
    assert metrics.counter_total("endpoint.polls") >= 1
    assert metrics.counter_total("bus.delivered") >= 8  # 4 doorbells + 4 results
    assert metrics.counter_total("bus.fallback_engaged") == 0


def test_polling_only_mode_still_works(testbed, metrics):
    cloud, endpoint, client = _rig(testbed, use_bus=False)
    try:
        with at_site(testbed.theta_login):
            future = client.run(_add, endpoint.endpoint_id, 2, b=3)
        assert future.result(timeout=60) == 5
    finally:
        client.close()
        endpoint.stop()
    assert metrics.counter_total("bus.delivered") == 0
    assert metrics.counter_total("endpoint.polls") >= 1


def test_pause_resume_replays_unacked_doorbells(testbed, metrics):
    """Satellite: doorbells published while the endpoint is paused stay in
    its unacked window and are replayed on resume — no task event is lost."""
    cloud, endpoint, client = _rig(testbed)
    try:
        endpoint.pause()
        with at_site(testbed.theta_login):
            futures = [
                client.run(_add, endpoint.endpoint_id, i, b=1) for i in range(3)
            ]
        get_clock().sleep(1.0)
        assert not any(f.done() for f in futures)
        # The doorbells are parked, unacked, in the endpoint's window.
        assert len(cloud.bus.unacked(task_topic(endpoint.endpoint_id), endpoint.endpoint_id)) == 3
        endpoint.resume()
        assert [f.result(timeout=60) for f in futures] == [1, 2, 3]
    finally:
        client.close()
        endpoint.stop()


def test_resume_with_reclaim_requeues_and_replays(testbed, metrics):
    """Satellite: ``resume(reclaim=True)`` republishes doorbells for
    requeued work and must not skip them as stale."""
    cloud, endpoint, client = _rig(testbed)
    try:
        with at_site(testbed.theta_login):
            warm = client.run(_add, endpoint.endpoint_id, 1, b=1)
        assert warm.result(timeout=60) == 2  # endpoint has fetched before
        endpoint.pause()
        with at_site(testbed.theta_login):
            futures = [
                client.run(_add, endpoint.endpoint_id, i, b=10) for i in range(3)
            ]
        get_clock().sleep(1.0)
        endpoint.resume(reclaim=True)
        assert [f.result(timeout=60) for f in futures] == [10, 11, 12]
    finally:
        client.close()
        endpoint.stop()
    # Nothing left pending at the bus for this endpoint once all work is done.
    assert cloud.bus.unacked(task_topic(endpoint.endpoint_id), endpoint.endpoint_id) == []


def test_trimmed_doorbell_backlog_is_drained_and_acks_recover(testbed, metrics):
    """A backlog deeper than the redelivery window trims doorbells for good.
    The poll fallback must drain the queue to empty before handing back to
    the bus (no task stranded without a wakeup), and the ack frontier must
    cross the trimmed gap instead of wedging into perpetual redelivery."""
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    constants = replace(testbed.constants, bus_redelivery_window=4)
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, constants)
    pool = WorkerPool(testbed.theta_compute, 3, name="trim-pool")
    endpoint = FaasEndpoint(
        "theta", cloud, token, testbed.theta_login, pool, max_tasks_per_poll=2
    ).start()
    client = FaasClient(cloud, token, site=testbed.theta_login)
    topic = task_topic(endpoint.endpoint_id)
    try:
        endpoint.pause()
        with at_site(testbed.theta_login):
            futures = [
                client.run(_add, endpoint.endpoint_id, i, b=1) for i in range(8)
            ]
        get_clock().sleep(1.0)
        # More doorbells than the window fit: the oldest were trimmed and
        # the subscription force-lapsed.
        assert metrics.counter_total("bus.window_trimmed") >= 4
        endpoint.resume()
        assert [f.result(timeout=120) for f in futures] == list(range(1, 9))
        # Replayed doorbells must all get acked (the frontier crossed the
        # trimmed gap) within a bounded nominal window — a wedged frontier
        # would redeliver the surviving envelopes forever.
        clock = get_clock()
        deadline = clock.now() + 30.0
        while cloud.bus.unacked(topic, endpoint.endpoint_id) and clock.now() < deadline:
            clock.sleep(0.5)
        assert cloud.bus.unacked(topic, endpoint.endpoint_id) == []
    finally:
        client.close()
        endpoint.stop()
    assert metrics.counter_total("bus.fallback_engaged") >= 1


def test_executor_shutdown_cancels_pending_futures(testbed, metrics):
    """Satellite: ``shutdown(cancel_futures=True)`` actually cancels pending
    futures and forgets them at the client."""
    cloud, endpoint, client = _rig(testbed)
    executor = FaasExecutor(client, endpoint.endpoint_id)
    try:
        endpoint.pause()  # tasks park at the cloud; futures stay pending
        with at_site(testbed.theta_login):
            futures = [executor.submit(_add, i, b=1) for i in range(3)]
        executor.shutdown(cancel_futures=True)
        assert all(f.cancelled() for f in futures)
        # The client forgot them: a second sweep finds nothing to cancel.
        assert client.cancel_pending(endpoint.endpoint_id) == 0
        assert metrics.counter_total("client.cancelled") == 3
    finally:
        client.close()
        endpoint.stop()


def test_client_close_fails_in_flight_futures(testbed, metrics):
    """Satellite: ``close()`` fails still-pending futures instead of
    abandoning them to hang forever."""
    cloud, endpoint, client = _rig(testbed)
    endpoint.pause()
    with at_site(testbed.theta_login):
        future = client.run(_add, endpoint.endpoint_id, 1, b=1)
    client.close()
    with pytest.raises(WorkflowError, match="client closed"):
        future.result(timeout=1)
    assert metrics.counter_total("client.abandoned") == 1
    endpoint.stop()


def test_next_completed_waits_out_its_full_deadline(testbed):
    """Satellite: ``next_completed`` loops on a deadline — a timeout with no
    completion returns ``None`` only after the window genuinely elapses."""
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    clock = get_clock()
    start = clock.now()
    assert cloud.next_completed("nobody", timeout=0.5) is None
    assert clock.now() - start >= 0.5
