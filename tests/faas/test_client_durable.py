"""Client-side durability: named timeout constants, kill(), and attach().

A campaign-process crash abandons the client without the orderly ack-drain
of ``close()``: ``kill()`` models that, leaving the broker subscription's
unacked frontier intact so a successor client constructed with the *same*
``client_id`` resumes deliveries where the dead one stopped.  ``attach``
re-binds a future to a task the dead client submitted — including tasks
that completed while nobody was listening.
"""

import pytest

from repro.exceptions import TaskError
from repro.faas import (
    SCOPE_COMPUTE,
    AuthServer,
    FaasClient,
    FaasCloud,
    FaasEndpoint,
)
from repro.net.context import at_site
from repro.net.defaults import (
    CLIENT_CLOSE_TIMEOUT,
    CLIENT_POLL_INTERVAL,
    CLIENT_RECEIVE_INTERVAL,
)
from repro.resources import WorkerPool


def _add(a, b):
    return a + b


def _fail():
    raise ValueError("remote boom")


@pytest.fixture
def rig(testbed):
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 3, name="test-pool")
    endpoint = FaasEndpoint("theta", cloud, token, testbed.theta_login, pool).start()
    client = FaasClient(cloud, token, site=testbed.theta_login)
    yield testbed, cloud, endpoint, client, token
    client.close()
    endpoint.stop()


def test_timeout_constants_are_named_defaults_and_overridable(rig):
    testbed, cloud, _endpoint, client, token = rig
    assert client._receive_interval == CLIENT_RECEIVE_INTERVAL
    assert client._poll_interval == CLIENT_POLL_INTERVAL
    assert client._close_timeout == CLIENT_CLOSE_TIMEOUT
    tuned = FaasClient(
        cloud,
        token,
        site=testbed.theta_login,
        receive_interval=0.05,
        poll_interval=0.1,
        close_timeout=2.0,
    )
    try:
        assert tuned._receive_interval == 0.05
        assert tuned._poll_interval == 0.1
        assert tuned._close_timeout == 2.0
    finally:
        tuned.close()


def test_client_id_is_generated_or_settable(rig):
    testbed, cloud, _endpoint, client, token = rig
    assert client.client_id.startswith("client-")
    named = FaasClient(cloud, token, site=testbed.theta_login, client_id="campaign-7")
    try:
        assert named.client_id == "campaign-7"
    finally:
        named.close()


def test_kill_then_attach_delivers_the_result_exactly_once(rig):
    testbed, cloud, endpoint, client, token = rig
    with at_site(testbed.theta_login):
        orphan = client.run(_add, endpoint.endpoint_id, 20, 22)
    task_id = orphan.task_id
    client.kill()  # process death: no ack drain, pending table dropped
    assert not orphan.done()

    successor = FaasClient(
        cloud, token, site=testbed.theta_login, client_id=client.client_id
    )
    try:
        future = successor.attach(task_id, endpoint_id=endpoint.endpoint_id)
        assert future.result(timeout=60) == 42
        assert future.task_id == task_id
    finally:
        successor.close()


def test_attach_to_an_already_terminal_task_completes_inline(rig):
    testbed, cloud, endpoint, client, token = rig
    with at_site(testbed.theta_login):
        done = client.run(_add, endpoint.endpoint_id, 1, 2)
    assert done.result(timeout=60) == 3
    client.kill()

    successor = FaasClient(
        cloud, token, site=testbed.theta_login, client_id=client.client_id
    )
    try:
        # The task finished before the successor existed: attach must not
        # wait for a notification that already came and went.
        future = successor.attach(done.task_id, endpoint_id=endpoint.endpoint_id)
        assert future.result(timeout=60) == 3
    finally:
        successor.close()


def test_attach_surfaces_remote_failures_without_resubmitting(rig):
    testbed, cloud, endpoint, client, token = rig
    with at_site(testbed.theta_login):
        doomed = client.run(_fail, endpoint.endpoint_id)
    with pytest.raises(TaskError):
        doomed.result(timeout=60)
    client.kill()

    successor = FaasClient(
        cloud, token, site=testbed.theta_login, client_id=client.client_id
    )
    try:
        # Without the original args payload there is nothing to resubmit:
        # the terminal error must surface directly on the attached future.
        future = successor.attach(doomed.task_id, endpoint_id=endpoint.endpoint_id)
        with pytest.raises(TaskError) as excinfo:
            future.result(timeout=60)
        assert "remote boom" in str(excinfo.value)
    finally:
        successor.close()


def test_kill_is_reentrant_and_drops_pending(rig):
    testbed, cloud, endpoint, client, token = rig
    with at_site(testbed.theta_login):
        client.run(_add, endpoint.endpoint_id, 1, 1)
    client.kill()
    client.kill()  # idempotent: a crash cleanup path may run twice
    assert not client._pending
