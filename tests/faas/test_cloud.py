"""Tests for the FaaS cloud service semantics."""

import pytest

from repro.exceptions import (
    AuthenticationError,
    EndpointUnavailableError,
    PayloadTooLargeError,
    WorkflowError,
)
from repro.faas.auth import SCOPE_COMPUTE, AuthServer
from repro.faas.cloud import FaasCloud, TaskStatus
from repro.serialize import Blob, serialize


def _square(x):
    return x * x


@pytest.fixture
def rig(testbed):
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    endpoint_id = cloud.register_endpoint(token, "theta", testbed.theta_compute)
    return cloud, token, endpoint_id


def test_register_and_fetch_function(rig):
    cloud, token, _ = rig
    func_id = cloud.register_function(token, serialize(_square))
    from repro.serialize import deserialize

    fn = deserialize(cloud.get_function(token, func_id))
    assert fn(3) == 9


def test_unknown_function_rejected(rig):
    cloud, token, _ = rig
    with pytest.raises(WorkflowError):
        cloud.get_function(token, "fn-ghost")
    with pytest.raises(WorkflowError):
        cloud.submit(token, "c", "fn-ghost", rig[2], serialize(((), {})))


def test_submit_requires_auth(rig, testbed):
    cloud, token, endpoint_id = rig
    with pytest.raises(AuthenticationError):
        cloud.submit(None, "c", "fn", endpoint_id, serialize(((), {})))


def test_unknown_endpoint_rejected(rig):
    cloud, token, _ = rig
    func_id = cloud.register_function(token, serialize(_square))
    with pytest.raises(EndpointUnavailableError):
        cloud.submit(token, "c", func_id, "ep-ghost", serialize(((), {})))


def test_payload_cap_enforced(rig):
    cloud, token, endpoint_id = rig
    func_id = cloud.register_function(token, serialize(_square))
    big = serialize(((Blob(50_000_000),), {}))
    with pytest.raises(PayloadTooLargeError):
        cloud.submit(token, "c", func_id, endpoint_id, big)


def test_small_payload_within_cap_accepted(rig):
    cloud, token, endpoint_id = rig
    func_id = cloud.register_function(token, serialize(_square))
    task_id = cloud.submit(token, "c", func_id, endpoint_id, serialize(((2,), {})))
    assert cloud.task(task_id).status is TaskStatus.WAITING


def test_task_lifecycle(rig):
    cloud, token, endpoint_id = rig
    func_id = cloud.register_function(token, serialize(_square))
    task_id = cloud.submit(token, "client-1", func_id, endpoint_id, serialize(((2,), {})))

    dispatches = cloud.fetch_tasks(token, endpoint_id, 10, timeout=1.0)
    assert [d.task_id for d in dispatches] == [task_id]
    assert cloud.task(task_id).status is TaskStatus.DISPATCHED

    args = cloud.store.read(dispatches[0].args_locator)
    from repro.serialize import deserialize

    (value,), _ = deserialize(args)
    assert value == 2

    cloud.report_result(token, endpoint_id, task_id, True, serialize({"success": True, "value": 4}))
    record = cloud.task(task_id)
    assert record.status is TaskStatus.SUCCESS
    assert cloud.next_completed("client-1", timeout=1.0) == task_id
    status, payload = cloud.get_result_payload(token, task_id)
    assert status is TaskStatus.SUCCESS
    assert deserialize(payload)["value"] == 4


def test_result_before_completion_rejected(rig):
    cloud, token, endpoint_id = rig
    func_id = cloud.register_function(token, serialize(_square))
    task_id = cloud.submit(token, "c", func_id, endpoint_id, serialize(((1,), {})))
    with pytest.raises(WorkflowError):
        cloud.get_result_payload(token, task_id)


def test_wrong_endpoint_cannot_report(rig, testbed):
    cloud, token, endpoint_id = rig
    other = cloud.register_endpoint(token, "venti", testbed.venti)
    func_id = cloud.register_function(token, serialize(_square))
    task_id = cloud.submit(token, "c", func_id, endpoint_id, serialize(((1,), {})))
    cloud.fetch_tasks(token, endpoint_id, 1, timeout=1.0)
    with pytest.raises(WorkflowError):
        cloud.report_result(token, other, task_id, True, serialize({}))


def test_store_and_forward_while_endpoint_offline(rig):
    cloud, token, endpoint_id = rig
    func_id = cloud.register_function(token, serialize(_square))
    # Endpoint has never polled: tasks queue at the cloud.
    ids = [
        cloud.submit(token, "c", func_id, endpoint_id, serialize(((i,), {})))
        for i in range(3)
    ]
    dispatches = cloud.fetch_tasks(token, endpoint_id, 10, timeout=1.0)
    assert [d.task_id for d in dispatches] == ids


def test_fetch_respects_max_tasks(rig):
    cloud, token, endpoint_id = rig
    func_id = cloud.register_function(token, serialize(_square))
    for i in range(5):
        cloud.submit(token, "c", func_id, endpoint_id, serialize(((i,), {})))
    first = cloud.fetch_tasks(token, endpoint_id, 2, timeout=1.0)
    assert len(first) == 2
    rest = cloud.fetch_tasks(token, endpoint_id, 10, timeout=1.0)
    assert len(rest) == 3


def test_next_completed_timeout(rig):
    cloud, *_ = rig
    assert cloud.next_completed("nobody", timeout=0.2) is None


def test_payload_store_tiers(rig):
    cloud, token, endpoint_id = rig
    tiny = cloud.store.write(serialize("tiny"))
    mid = cloud.store.write(serialize(Blob(10_000)))
    large = cloud.store.write(serialize(Blob(1_000_000)))
    assert tiny.startswith("inline:")
    assert mid.startswith("redis:")
    assert large.startswith("s3:")


def test_unknown_locator(rig):
    cloud, *_ = rig
    with pytest.raises(WorkflowError):
        cloud.store.read("s3:ghost")


def test_endpoint_online_tracking(rig):
    cloud, token, endpoint_id = rig
    assert not cloud.endpoint_online(endpoint_id)
    cloud.fetch_tasks(token, endpoint_id, 1, timeout=0.1)
    assert cloud.endpoint_online(endpoint_id)
    cloud.set_endpoint_online(endpoint_id, False)
    assert not cloud.endpoint_online(endpoint_id)
