"""End-to-end tests for FaaS endpoints, client futures, and the executor."""

import pytest

from repro.exceptions import TaskError
from repro.faas import (
    SCOPE_COMPUTE,
    AuthServer,
    FaasClient,
    FaasCloud,
    FaasEndpoint,
    FaasExecutor,
)
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.resources import WorkerPool
from repro.serialize import Blob


def _add(a, b):
    return a + b


def _fail():
    raise ValueError("remote boom")


def _sleepy(duration):
    get_clock().sleep(duration)
    return duration


@pytest.fixture
def rig(testbed):
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 3, name="test-pool")
    endpoint = FaasEndpoint("theta", cloud, token, testbed.theta_login, pool).start()
    client = FaasClient(cloud, token, site=testbed.theta_login)
    yield testbed, cloud, endpoint, client
    client.close()
    endpoint.stop()


def test_submit_and_result(rig):
    testbed, cloud, endpoint, client = rig
    with at_site(testbed.theta_login):
        future = client.run(_add, endpoint.endpoint_id, 2, b=3)
    assert future.result(timeout=30) == 5


def test_many_tasks_in_parallel(rig):
    testbed, cloud, endpoint, client = rig
    with at_site(testbed.theta_login):
        futures = [client.run(_add, endpoint.endpoint_id, i, b=1) for i in range(12)]
    assert [f.result(timeout=60) for f in futures] == [i + 1 for i in range(12)]


def test_remote_exception_becomes_task_error(rig):
    testbed, cloud, endpoint, client = rig
    with at_site(testbed.theta_login):
        future = client.run(_fail, endpoint.endpoint_id)
    with pytest.raises(TaskError) as excinfo:
        future.result(timeout=30)
    assert "remote boom" in str(excinfo.value)
    assert "ValueError" in excinfo.value.remote_traceback


def test_function_registration_is_idempotent(rig):
    testbed, cloud, endpoint, client = rig
    with at_site(testbed.theta_login):
        id1 = client.register_function(_add)
        id2 = client.register_function(_add)
    assert id1 == id2


def test_distinct_functions_get_distinct_ids(rig):
    testbed, cloud, endpoint, client = rig
    with at_site(testbed.theta_login):
        id1 = client.register_function(_add)
        id2 = client.register_function(_fail)
    assert id1 != id2


def test_executor_interface(rig):
    testbed, cloud, endpoint, client = rig
    executor = FaasExecutor(client, endpoint.endpoint_id)
    with at_site(testbed.theta_login):
        future = executor.submit(_add, 10, b=20)
    assert future.result(timeout=30) == 30
    executor.shutdown()
    with pytest.raises(RuntimeError):
        executor.submit(_add, 1, b=1)


def test_pause_resume_store_and_forward(rig):
    testbed, cloud, endpoint, client = rig
    endpoint.pause()
    with at_site(testbed.theta_login):
        future = client.run(_add, endpoint.endpoint_id, 1, b=1)
    get_clock().sleep(1.0)
    assert not future.done()  # endpoint offline: task parked at the cloud
    endpoint.resume()
    assert future.result(timeout=60) == 2


def test_task_overhead_is_bounded(rig):
    """A no-op round trip should land in the sub-second regime the paper's
    Fig. 3 reports for small payloads, not minutes."""
    testbed, cloud, endpoint, client = rig
    clock = get_clock()
    with at_site(testbed.theta_login):
        start = clock.now()
        client.run(_add, endpoint.endpoint_id, 1, b=1).result(timeout=30)
        lifetime = clock.now() - start
    assert 0.01 < lifetime < 10.0


def test_blob_payloads_flow_through(rig):
    testbed, cloud, endpoint, client = rig

    with at_site(testbed.theta_login):
        future = client.run(_add, endpoint.endpoint_id, 1, b=2)
        assert future.result(timeout=30) == 3


def test_two_endpoints_route_independently(rig):
    testbed, cloud, endpoint, client = rig
    gpu_pool = WorkerPool(testbed.venti, 2, name="gpu-pool")
    gpu_ep = FaasEndpoint(
        "venti", cloud, endpoint.token, testbed.venti, gpu_pool
    ).start()
    try:
        with at_site(testbed.theta_login):
            f1 = client.run(_add, endpoint.endpoint_id, 1, b=1)
            f2 = client.run(_add, gpu_ep.endpoint_id, 2, b=2)
        assert f1.result(timeout=30) == 2
        assert f2.result(timeout=30) == 4
        assert endpoint.pool.tasks_completed >= 1
        assert gpu_pool.tasks_completed >= 1
    finally:
        gpu_ep.stop()
