"""Extra FaaS client/executor behaviors: map(), lifecycle, reuse."""

import pytest

from repro.faas import (
    SCOPE_COMPUTE,
    AuthServer,
    FaasClient,
    FaasCloud,
    FaasEndpoint,
    FaasExecutor,
)
from repro.net.context import at_site
from repro.resources import WorkerPool


def _square(x):
    return x * x


@pytest.fixture
def rig(testbed):
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("u", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 3, name="exec-extra")
    endpoint = FaasEndpoint("t", cloud, token, testbed.theta_login, pool).start()
    client = FaasClient(cloud, token, site=testbed.theta_login)
    yield testbed, endpoint, client
    client.close()
    endpoint.stop()


def test_executor_map(rig):
    testbed, endpoint, client = rig
    executor = FaasExecutor(client, endpoint.endpoint_id)
    with at_site(testbed.theta_login):
        results = list(executor.map(_square, range(6)))
    assert results == [0, 1, 4, 9, 16, 25]


def test_client_close_is_idempotent(rig):
    testbed, endpoint, client = rig
    client.close()
    client.close()  # second close: no hang, no raise


def test_client_context_manager(testbed):
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("v", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 1, name="cm-pool")
    endpoint = FaasEndpoint("cm", cloud, token, testbed.theta_login, pool).start()
    try:
        with FaasClient(cloud, token, site=testbed.theta_login) as client:
            with at_site(testbed.theta_login):
                assert client.run(_square, endpoint.endpoint_id, 4).result(30) == 16
    finally:
        endpoint.stop()


def test_endpoint_context_manager(testbed):
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("w", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 1, name="ep-cm")
    with FaasEndpoint("epcm", cloud, token, testbed.theta_login, pool) as endpoint:
        client = FaasClient(cloud, token, site=testbed.theta_login)
        with at_site(testbed.theta_login):
            assert client.run(_square, endpoint.endpoint_id, 5).result(30) == 25
        client.close()
