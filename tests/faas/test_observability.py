"""Endpoint configuration validation and tracing across an outage."""

from __future__ import annotations

import time

import pytest

from repro.exceptions import WorkflowError
from repro.faas import (
    SCOPE_COMPUTE,
    AuthServer,
    FaasClient,
    FaasCloud,
    FaasEndpoint,
)
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.observe import Tracer, find_orphans, group_traces, set_tracer
from repro.resources import WorkerPool


def _fn(x):
    return x * 2


def _slow_fn(x):
    get_clock().sleep(5.0)
    return x


@pytest.fixture
def rig(testbed):
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("u", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 1, name="obs-pool")
    return testbed, cloud, token, pool


@pytest.mark.parametrize("bad", [0, -1, -0.5])
def test_poll_interval_must_be_positive(rig, bad):
    testbed, cloud, token, pool = rig
    with pytest.raises(WorkflowError, match="poll_interval must be a positive"):
        FaasEndpoint(
            "t", cloud, token, testbed.theta_login, pool, poll_interval=bad
        )


def test_poll_interval_none_uses_cloud_default(rig):
    testbed, cloud, token, pool = rig
    endpoint = FaasEndpoint(
        "t", cloud, token, testbed.theta_login, pool, poll_interval=None
    )
    assert endpoint._poll_interval == cloud.constants.endpoint_poll_interval


@pytest.mark.parametrize("bad", [0, -3])
def test_max_tasks_per_poll_must_be_positive(rig, bad):
    testbed, cloud, token, pool = rig
    with pytest.raises(WorkflowError, match="max_tasks_per_poll must be a positive"):
        FaasEndpoint(
            "t", cloud, token, testbed.theta_login, pool, max_tasks_per_poll=bad
        )


def test_spans_survive_outage_and_reconnect(rig):
    """Disconnect the endpoint mid-campaign: tasks store-and-forward at the
    cloud (and finished results hold in the endpoint outbox), and once the
    endpoint reconnects every trace completes with no orphan spans."""
    testbed, cloud, token, pool = rig
    tracer = Tracer()
    set_tracer(tracer)
    endpoint = FaasEndpoint("t", cloud, token, testbed.theta_login, pool).start()
    client = FaasClient(cloud, token, site=testbed.theta_login)
    try:
        with at_site(testbed.theta_login):
            # A task completed before the outage.
            before = client.run(_fn, endpoint.endpoint_id, 1)
            assert before.result(timeout=30) == 2
            # A slow task: likely fetched before the outage, its result held
            # in the endpoint outbox while paused.
            held = client.run(_slow_fn, endpoint.endpoint_id, 7)
            endpoint.pause()
            # A task submitted *during* the outage: waits at the cloud.
            stored = client.run(_fn, endpoint.endpoint_id, 3)
        time.sleep(0.1)  # ~50 nominal s at the test time scale
        assert not stored.done()  # nothing moves while disconnected
        assert not held.done()  # its result is held in the outbox
        endpoint.resume()
        assert held.result(timeout=30) == 7
        assert stored.result(timeout=30) == 6
    finally:
        client.close()
        endpoint.stop()

    spans = tracer.spans()
    traces = group_traces(spans)
    assert len(traces) == 3
    assert find_orphans(spans) == []
    # Every task's trace made it end to end: submitted to the cloud AND
    # uplinked from the endpoint, outage or not.
    for bucket in traces.values():
        names = {s.name for s in bucket}
        assert "cloud.submit" in names
        assert "worker.run" in names
        assert "result.uplink" in names
        assert all(s.end is not None for s in bucket)
