"""Tests for crash recovery: re-queueing tasks stranded on a dead endpoint."""

import pytest

from repro.exceptions import EndpointUnavailableError
from repro.faas import SCOPE_COMPUTE, AuthServer, FaasCloud
from repro.faas.cloud import TaskStatus
from repro.serialize import serialize


def _fn(x):
    return x


@pytest.fixture
def rig(testbed):
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("u", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    endpoint_id = cloud.register_endpoint(token, "theta", testbed.theta_compute)
    func_id = cloud.register_function(token, serialize(_fn))
    return cloud, token, endpoint_id, func_id


def test_requeue_restores_fetched_tasks_in_order(rig):
    cloud, token, endpoint_id, func_id = rig
    ids = [
        cloud.submit(token, "c", func_id, endpoint_id, serialize(((i,), {})))
        for i in range(3)
    ]
    fetched = cloud.fetch_tasks(token, endpoint_id, 10, timeout=1.0)
    assert len(fetched) == 3
    # "Crash": nothing reported.  Requeue puts them back, oldest first.
    requeued = cloud.requeue_dispatched(token, endpoint_id)
    assert requeued == ids
    for task_id in ids:
        assert cloud.task(task_id).status is TaskStatus.WAITING
    refetched = cloud.fetch_tasks(token, endpoint_id, 10, timeout=1.0)
    assert [d.task_id for d in refetched] == ids


def test_requeue_skips_completed_tasks(rig):
    cloud, token, endpoint_id, func_id = rig
    task_id = cloud.submit(token, "c", func_id, endpoint_id, serialize(((1,), {})))
    cloud.fetch_tasks(token, endpoint_id, 1, timeout=1.0)
    cloud.report_result(
        token, endpoint_id, task_id, True, serialize({"success": True, "value": 1})
    )
    assert cloud.requeue_dispatched(token, endpoint_id) == []
    assert cloud.task(task_id).status is TaskStatus.SUCCESS


def test_requeue_with_nothing_dispatched_is_a_noop(rig):
    cloud, token, endpoint_id, func_id = rig
    assert cloud.requeue_dispatched(token, endpoint_id) == []
    # A queued-but-never-fetched task is untouched by a requeue.
    task_id = cloud.submit(token, "c", func_id, endpoint_id, serialize(((1,), {})))
    assert cloud.requeue_dispatched(token, endpoint_id) == []
    assert cloud.task(task_id).status is TaskStatus.WAITING


def test_requeue_racing_report_result_keeps_exactly_one_outcome(rig):
    """A report that lands after the task was requeued must win exactly once:
    the requeued queue copy is dropped so the work is not run a second time."""
    cloud, token, endpoint_id, func_id = rig
    task_id = cloud.submit(token, "c", func_id, endpoint_id, serialize(((1,), {})))
    cloud.fetch_tasks(token, endpoint_id, 1, timeout=1.0)
    # The reclaim races the in-flight result: requeue first, report second.
    assert cloud.requeue_dispatched(token, endpoint_id) == [task_id]
    cloud.report_result(
        token, endpoint_id, task_id, True, serialize({"success": True, "value": 1})
    )
    assert cloud.task(task_id).status is TaskStatus.SUCCESS
    # The stale queue copy is gone: nothing left to fetch.
    assert cloud.fetch_tasks(token, endpoint_id, 10, timeout=0.5) == []


def test_requeue_then_duplicate_execution_drops_second_result(rig):
    """If the race goes the other way — the requeued copy is re-fetched and
    re-executed before the first result arrives — the slower report is
    dropped rather than double-finalizing the task."""
    from repro.observe import MetricsRegistry, set_metrics

    metrics = MetricsRegistry()
    set_metrics(metrics)
    cloud, token, endpoint_id, func_id = rig
    task_id = cloud.submit(token, "c", func_id, endpoint_id, serialize(((1,), {})))
    cloud.fetch_tasks(token, endpoint_id, 1, timeout=1.0)
    cloud.requeue_dispatched(token, endpoint_id)
    cloud.fetch_tasks(token, endpoint_id, 1, timeout=1.0)  # second execution
    cloud.report_result(
        token, endpoint_id, task_id, True, serialize({"success": True, "value": 1})
    )
    cloud.report_result(  # the original, slower report arrives last
        token, endpoint_id, task_id, True, serialize({"success": True, "value": 1})
    )
    assert cloud.task(task_id).status is TaskStatus.SUCCESS
    assert metrics.counter_total("faas.duplicate_results") == 1


def test_requeue_unknown_endpoint(rig):
    cloud, token, *_ = rig
    with pytest.raises(EndpointUnavailableError):
        cloud.requeue_dispatched(token, "ep-ghost")


def test_requeue_preserves_queued_tasks_behind_reclaimed(rig):
    cloud, token, endpoint_id, func_id = rig
    first = cloud.submit(token, "c", func_id, endpoint_id, serialize(((1,), {})))
    cloud.fetch_tasks(token, endpoint_id, 1, timeout=1.0)
    later = cloud.submit(token, "c", func_id, endpoint_id, serialize(((2,), {})))
    cloud.requeue_dispatched(token, endpoint_id)
    order = [d.task_id for d in cloud.fetch_tasks(token, endpoint_id, 10, timeout=1.0)]
    assert order == [first, later]  # reclaimed work resumes ahead of new work


def test_endpoint_resume_with_reclaim_end_to_end(testbed):
    """Crash an endpoint mid-flight: resume(reclaim=True) re-runs the task."""
    from repro.faas import FaasClient, FaasEndpoint
    from repro.net.clock import get_clock
    from repro.net.context import at_site
    from repro.resources import WorkerPool

    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("u", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 1, name="reclaim-pool")
    endpoint = FaasEndpoint("t", cloud, token, testbed.theta_login, pool)
    client = FaasClient(cloud, token, site=testbed.theta_login)
    try:
        # Submit while offline so the task sits WAITING at the cloud.
        with at_site(testbed.theta_login):
            future = client.run(_fn, endpoint.endpoint_id, 7)
        # Simulate a crash *after fetch, before execution*: fetch directly,
        # discarding the dispatch (the worker never sees it).
        cloud.fetch_tasks(token, endpoint.endpoint_id, 10, timeout=1.0)
        assert not future.done()
        # Restart with reclamation: the endpoint re-fetches and executes.
        endpoint.start()
        endpoint.resume(reclaim=True)
        assert future.result(timeout=30) == 7
    finally:
        client.close()
        endpoint.stop()
