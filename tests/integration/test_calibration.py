"""Calibration guardrails: the constants in ``repro.net.defaults`` must keep
producing component latencies near the paper's reported anchors (documented
in EXPERIMENTS.md).  These are fast, unit-level checks; the benchmarks
assert the full figure-level claims."""

import statistics

import pytest

from repro.faas import SCOPE_COMPUTE, AuthServer, FaasClient, FaasCloud, FaasEndpoint
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.kvstore import KVClient, KVServer
from repro.serialize import Blob, serialize
from repro.transfer import TransferClient, TransferEndpoint, TransferService


def _noop():
    return None


def test_faas_dispatch_is_hundreds_of_ms(testbed):
    """§V-D3: dispatching a task through the cloud ≈ 100 ms (we accept the
    100-600 ms band; the simulator floor adds some)."""
    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("c", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    from repro.resources import WorkerPool

    pool = WorkerPool(testbed.theta_compute, 1, name="calib")
    endpoint = FaasEndpoint("t", cloud, token, testbed.theta_login, pool).start()
    client = FaasClient(cloud, token, site=testbed.theta_login)
    clock = get_clock()
    try:
        lifetimes = []
        with at_site(testbed.theta_login):
            for _ in range(8):
                start = clock.now()
                client.run(_noop, endpoint.endpoint_id).result(timeout=60)
                lifetimes.append(clock.now() - start)
        median = statistics.median(lifetimes)
        assert 0.1 <= median <= 2.0, f"no-op FaaS round trip drifted: {median:.3f}s"
    finally:
        client.close()
        endpoint.stop()


def test_globus_submission_near_half_second(testbed):
    """§V-D1: a transfer submission's HTTPS request averages ~500 ms."""
    service = TransferService(
        testbed.globus_cloud, testbed.network, testbed.constants
    ).start()
    ep_a = TransferEndpoint(
        "ca", testbed.theta_login, testbed.mounts.volume("theta-lustre")
    )
    ep_b = TransferEndpoint("cb", testbed.venti, testbed.mounts.volume("venti-local"))
    service.register_endpoint(ep_a)
    service.register_endpoint(ep_b)
    client = TransferClient(service, "calib", site=testbed.theta_login)
    clock = get_clock()
    try:
        ep_a.volume.write("f", b"x", nominal_size=1)
        costs = []
        with at_site(testbed.theta_login):
            for _ in range(6):
                start = clock.now()
                client.submit("ca", "cb", [("f", "f")])
                costs.append(clock.now() - start)
        median = statistics.median(costs)
        assert 0.2 <= median <= 1.5, f"submission latency drifted: {median:.3f}s"
    finally:
        service.stop()


def test_globus_transfer_completes_in_paper_band(testbed):
    """§V-D1: small transfers complete in 1-5 s."""
    service = TransferService(
        testbed.globus_cloud, testbed.network, testbed.constants
    ).start()
    ep_a = TransferEndpoint(
        "da", testbed.theta_login, testbed.mounts.volume("theta-lustre")
    )
    ep_b = TransferEndpoint("db", testbed.venti, testbed.mounts.volume("venti-local"))
    service.register_endpoint(ep_a)
    service.register_endpoint(ep_b)
    client = TransferClient(service, "calib2", site=testbed.theta_login)
    try:
        ep_a.volume.write("g", b"x", nominal_size=1_000_000)
        durations = []
        with at_site(testbed.theta_login):
            for _ in range(5):
                task = client.wait(client.submit("da", "db", [("g", "g")]), timeout=120)
                durations.append(task.completed_at - task.started_at)
        median = statistics.median(durations)
        assert 0.8 <= median <= 5.0, f"transfer duration drifted: {median:.2f}s"
    finally:
        service.stop()


def test_intra_site_redis_is_milliseconds(testbed):
    server = KVServer(testbed.theta_login)
    client = KVClient(server, testbed.network, site=testbed.theta_login)
    clock = get_clock()
    start = clock.now()
    for index in range(20):
        client.set(f"k{index}", b"x" * 100)
    per_op = (clock.now() - start) / 20
    assert per_op < 0.05, f"local redis op drifted: {per_op * 1000:.1f}ms"


def test_faas_payload_tiers_relative_costs(testbed):
    """Inline << ElastiCache << S3 — the Fig. 3 mechanism."""
    auth = AuthServer()
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    clock = get_clock()

    def cost_of(nbytes):
        payload = serialize(Blob(nbytes))
        start = clock.now()
        for _ in range(5):
            cloud.store.write(payload)
        return (clock.now() - start) / 5

    inline = cost_of(100)
    elasticache = cost_of(10_000)
    s3 = cost_of(1_000_000)
    # Inline rides the message: any cost measured is harness noise, which
    # must stay well below the modeled tiers.
    assert inline < 0.5 * elasticache
    assert 0.05 < elasticache < 1.5
    assert s3 > elasticache
