"""Integration tests for batch-scheduler-provisioned pilots (§II-A)."""

import pytest

from repro.apps import AppMethod, TopicPolicy, build_workflow
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.topology import FixedLatency


def _quick():
    return "done"


METHODS = [AppMethod(_quick, resource="cpu", topic="work")]
POLICIES = {"work": TopicPolicy(locality="local", threshold=10_000)}


@pytest.mark.parametrize("config", ["parsl", "funcx+globus"])
def test_scheduled_pilot_runs_tasks_after_queue_wait(testbed, config):
    handle = build_workflow(
        config,
        testbed,
        METHODS,
        POLICIES,
        n_cpu_workers=2,
        n_gpu_workers=1,
        use_batch_scheduler=True,
        batch_queue_delay=FixedLatency(2.0),
    )
    with handle:
        with at_site(testbed.theta_login):
            for _ in range(4):
                handle.queues.send_request("_quick", topic="work")
            for _ in range(4):
                result = handle.queues.get_result("work", timeout=120)
                assert result is not None and result.success
    # Pool released its nodes back on shutdown.
    # (scheduler is internal; reaching through the pool to check)
    scheduler = handle.cpu_pool._scheduler
    assert scheduler is not None
    assert scheduler.free_nodes == scheduler.total_nodes


def test_tasks_submitted_before_pilot_starts_are_not_lost(testbed):
    """Requests sent while the pilot is still queued execute afterwards —
    the multi-level-scheduling advantage (§II-A)."""
    handle = build_workflow(
        "parsl",
        testbed,
        METHODS,
        POLICIES,
        n_cpu_workers=1,
        n_gpu_workers=1,
        use_batch_scheduler=True,
        batch_queue_delay=FixedLatency(3.0),
    )
    clock = get_clock()
    # Enqueue work before starting the stack: it waits in the request queue.
    with at_site(testbed.theta_login):
        handle.queues.send_request("_quick", topic="work")
    start = clock.now()
    with handle:
        with at_site(testbed.theta_login):
            result = handle.queues.get_result("work", timeout=120)
        assert result is not None and result.success
        assert clock.now() - start >= 3.0  # waited out the batch queue
