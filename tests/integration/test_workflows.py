"""Cross-module integration tests: full stacks, ledger sanity, failure
injection, store-and-forward robustness."""

import statistics

import pytest

from repro.apps import AppMethod, TopicPolicy, build_workflow
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.serialize import Blob


def _noop(payload=None):
    return None


def _echo_blob(nbytes):
    return Blob(nbytes)


METHODS = [
    AppMethod(_noop, resource="cpu", topic="cpu-work"),
    AppMethod(_echo_blob, resource="gpu", topic="gpu-work"),
]
POLICIES = {
    "cpu-work": TopicPolicy(locality="local", threshold=10_000),
    "gpu-work": TopicPolicy(locality="cross", threshold=10_000),
}


def _run_tasks(handle, testbed, n=6, payload=0):
    with at_site(testbed.theta_login):
        for _ in range(n):
            args = (Blob(payload),) if payload else ()
            handle.queues.send_request("_noop", args=args, topic="cpu-work")
        results = []
        for _ in range(n):
            result = handle.queues.get_result("cpu-work", timeout=120)
            assert result is not None and result.success, result and result.error
            results.append(result)
    return results


@pytest.mark.parametrize("config", ["parsl", "parsl+redis", "funcx+globus"])
def test_ledger_complete_on_every_config(testbed, config):
    handle = build_workflow(
        config, testbed, METHODS, POLICIES, n_cpu_workers=2, n_gpu_workers=2
    )
    with handle:
        results = _run_tasks(handle, testbed, n=6, payload=100_000)
    for result in results:
        # Full timestamp chain present and ordered.
        chain = [
            result.time_created,
            result.time_client_sent,
            result.time_server_received,
            result.time_server_dispatched,
            result.time_worker_started,
            result.time_compute_started,
            result.time_compute_ended,
            result.time_worker_ended,
            result.time_server_result_received,
            result.time_client_result_received,
        ]
        assert all(t is not None for t in chain)
        assert chain == sorted(chain)
        assert result.task_lifetime > 0
        assert result.time_serialization > 0


def test_funcx_overhead_exceeds_parsl_for_small_tasks(testbed):
    """The cloud hop costs something: FuncX no-op lifetime > Parsl's
    (Fig. 3's premise)."""
    lifetimes = {}
    for config in ("parsl", "funcx+globus"):
        handle = build_workflow(
            config, testbed, METHODS, POLICIES, n_cpu_workers=2, n_gpu_workers=2
        )
        with handle:
            results = _run_tasks(handle, testbed, n=8)
        lifetimes[config] = statistics.median(r.task_lifetime for r in results)
    assert lifetimes["funcx+globus"] > lifetimes["parsl"]


def test_proxying_reduces_large_payload_lifetime_on_funcx(testbed):
    """Fig. 3's headline: pass-by-reference beats pass-through-the-cloud
    for 1 MB payloads."""
    proxied_policy = {
        "cpu-work": TopicPolicy(locality="local", threshold=10_000),
        "gpu-work": TopicPolicy(locality="cross", threshold=10_000),
    }
    byvalue_policy = {
        "cpu-work": TopicPolicy(locality="local", threshold=None),
        "gpu-work": TopicPolicy(locality="cross", threshold=None),
    }
    medians = {}
    for label, policies in (("proxied", proxied_policy), ("by-value", byvalue_policy)):
        handle = build_workflow(
            "funcx+globus",
            testbed,
            METHODS,
            policies,
            n_cpu_workers=2,
            n_gpu_workers=2,
        )
        with handle:
            results = _run_tasks(handle, testbed, n=6, payload=1_000_000)
        medians[label] = statistics.median(r.task_lifetime for r in results)
    assert medians["proxied"] < medians["by-value"]


def test_funcx_endpoint_outage_recovers(testbed):
    """Pause the CPU endpoint mid-stream: the cloud holds tasks, and all
    results still arrive after resume (§IV-A3 robustness)."""
    handle = build_workflow(
        "funcx+globus", testbed, METHODS, POLICIES, n_cpu_workers=2, n_gpu_workers=2
    )
    with handle:
        cpu_endpoint = handle.endpoints[0]
        with at_site(testbed.theta_login):
            for _ in range(3):
                handle.queues.send_request("_noop", topic="cpu-work")
        cpu_endpoint.pause()
        with at_site(testbed.theta_login):
            for _ in range(3):
                handle.queues.send_request("_noop", topic="cpu-work")
        get_clock().sleep(2.0)
        cpu_endpoint.resume()
        with at_site(testbed.theta_login):
            received = 0
            while received < 6:
                result = handle.queues.get_result("cpu-work", timeout=120)
                assert result is not None and result.success
                received += 1


def test_globus_transfer_failure_retries_transparently(testbed):
    """An injected DTN failure is retried by the service; the workflow sees
    only extra latency, not an error."""
    handle = build_workflow(
        "funcx+globus", testbed, METHODS, POLICIES, n_cpu_workers=2, n_gpu_workers=2
    )
    with handle:
        handle.transfer_service.inject_failure("flaky DTN")
        with at_site(testbed.theta_login):
            handle.queues.send_request(
                "_echo_blob", args=(1_000_000,), topic="gpu-work"
            )
            result = handle.queues.get_result("gpu-work", timeout=180)
            assert result is not None and result.success, result and result.error
            assert result.access_value() == Blob(1_000_000)


def test_worker_exception_reported_not_fatal(testbed):
    def _sometimes_fails(should_fail):
        if should_fail:
            raise ValueError("injected task failure")
        return "ok"

    methods = [AppMethod(_sometimes_fails, resource="cpu", topic="cpu-work")]
    handle = build_workflow(
        "parsl+redis",
        testbed,
        methods,
        POLICIES,
        n_cpu_workers=2,
        n_gpu_workers=1,
    )
    with handle:
        with at_site(testbed.theta_login):
            handle.queues.send_request("_sometimes_fails", args=(True,), topic="cpu-work")
            handle.queues.send_request("_sometimes_fails", args=(False,), topic="cpu-work")
            outcomes = [
                handle.queues.get_result("cpu-work", timeout=60) for _ in range(2)
            ]
    by_success = {bool(r.success): r for r in outcomes}
    assert "injected task failure" in by_success[False].error
    assert by_success[True].value == "ok"


def test_cross_site_outputs_return_via_data_fabric(testbed):
    """A large GPU-task output must come back as a store reference and be
    resolvable at the thinker (the Fig. 5 'data access' path)."""
    handle = build_workflow(
        "funcx+globus", testbed, METHODS, POLICIES, n_cpu_workers=1, n_gpu_workers=1
    )
    with handle:
        with at_site(testbed.theta_login):
            handle.queues.send_request(
                "_echo_blob", args=(5_000_000,), topic="gpu-work"
            )
            result = handle.queues.get_result("gpu-work", timeout=180)
            assert result is not None and result.success
            from repro.proxystore import is_proxy

            assert is_proxy(result.value)
            value = result.access_value()
            assert value == Blob(5_000_000)
            assert result.dur_resolve_value > 0
