"""Tests for bootstrap ensembles and UCB ranking."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.ensemble import Ensemble, bootstrap_indices, rank_by_ucb, ucb_scores
from repro.ml.mpnn import MpnnSurrogate


def test_bootstrap_indices_shapes_and_determinism():
    a = bootstrap_indices(100, 4, frac=0.8, seed=3)
    b = bootstrap_indices(100, 4, frac=0.8, seed=3)
    assert len(a) == 4
    for idx_a, idx_b in zip(a, b):
        assert len(idx_a) == 80
        np.testing.assert_array_equal(idx_a, idx_b)
        assert len(np.unique(idx_a)) == 80  # without replacement


def test_bootstrap_indices_validation():
    with pytest.raises(ValueError):
        bootstrap_indices(10, 2, frac=0.0)
    with pytest.raises(ValueError):
        bootstrap_indices(10, 2, frac=1.5)


def test_bootstrap_minimum_one_sample():
    idx = bootstrap_indices(1, 3, frac=0.5)
    assert all(len(i) == 1 for i in idx)


def test_ensemble_requires_members():
    with pytest.raises(ValueError):
        Ensemble([])


def test_ensemble_build_and_train():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(120, 4))
    y = x @ np.array([1.0, -1.0, 0.5, 0.0])
    ensemble = Ensemble.build(
        lambda i: MpnnSurrogate(4, hidden=(16,), seed=i), n_models=3
    )
    assert len(ensemble) == 3
    ensemble.train(x, y, seed=1, epochs=30)
    mean, std = ensemble.predict_mean_std(x)
    assert mean.shape == (120,)
    assert std.shape == (120,)
    assert np.all(std >= 0)


def test_ensemble_members_differ():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(80, 3))
    y = x[:, 0]
    ensemble = Ensemble.build(
        lambda i: MpnnSurrogate(3, hidden=(8,), seed=i), n_models=2
    )
    ensemble.train(x, y, seed=0, epochs=10)
    preds = ensemble.predict_all(x)
    assert preds.shape == (2, 80)
    assert not np.allclose(preds[0], preds[1])


def test_ucb_scores():
    mean = np.array([1.0, 2.0])
    std = np.array([0.5, 0.0])
    np.testing.assert_allclose(ucb_scores(mean, std), [1.5, 2.0])
    np.testing.assert_allclose(ucb_scores(mean, std, kappa=2.0), [2.0, 2.0])


def test_rank_by_ucb_orders_best_first():
    mean = np.array([0.0, 5.0, 3.0])
    std = np.array([10.0, 0.0, 0.0])
    order = rank_by_ucb(mean, std, kappa=1.0)
    assert order[0] == 0  # huge uncertainty wins with kappa=1


@given(
    st.lists(st.floats(min_value=-100, max_value=100), min_size=2, max_size=30),
    st.floats(min_value=0.0, max_value=5.0),
)
def test_rank_is_permutation_and_sorted(means, kappa):
    means = np.asarray(means)
    stds = np.abs(means) * 0.1
    order = rank_by_ucb(means, stds, kappa)
    assert sorted(order) == list(range(len(means)))
    scores = ucb_scores(means, stds, kappa)[order]
    assert all(scores[i] >= scores[i + 1] for i in range(len(scores) - 1))
