"""Tests for the neural-network core."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.ml.nn import MLP, mse, rmse


def test_construction_validation():
    with pytest.raises(ValueError):
        MLP([4])
    with pytest.raises(ValueError):
        MLP([4, 0, 1])


def test_predict_shapes():
    mlp = MLP([3, 8, 1], seed=0)
    single_output = mlp.predict(np.zeros((5, 3)))
    assert single_output.shape == (5,)
    multi = MLP([3, 8, 2], seed=0)
    assert multi.predict(np.zeros((5, 3))).shape == (5, 2)


def test_deterministic_init():
    a, b = MLP([4, 8, 1], seed=3), MLP([4, 8, 1], seed=3)
    x = np.random.default_rng(0).normal(size=(10, 4))
    np.testing.assert_allclose(a.predict(x), b.predict(x))


def test_training_reduces_loss():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(200, 4))
    y = x[:, 0] ** 2 + np.sin(x[:, 1]) - 0.5 * x[:, 2]
    mlp = MLP([4, 32, 32, 1], seed=1)
    losses = mlp.train(x, y, epochs=60, lr=3e-3, seed=0)
    assert losses[-1] < losses[0] * 0.2


def test_trained_model_predicts_held_out():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(400, 3))
    y = 2.0 * x[:, 0] - x[:, 1]
    mlp = MLP([3, 24, 1], seed=2)
    mlp.train(x[:300], y[:300], epochs=80, lr=3e-3)
    assert rmse(mlp.predict(x[300:]), y[300:]) < 0.5 * np.std(y)


def test_training_empty_dataset_rejected():
    mlp = MLP([2, 4, 1])
    with pytest.raises(ValueError):
        mlp.train(np.zeros((0, 2)), np.zeros(0))


def test_target_normalization_handles_offsets():
    rng = np.random.default_rng(2)
    x = rng.normal(size=(200, 2))
    y = 1000.0 + x[:, 0]
    mlp = MLP([2, 16, 1], seed=0)
    mlp.train(x, y, epochs=50, lr=3e-3)
    pred = mlp.predict(x)
    assert abs(float(np.mean(pred)) - 1000.0) < 5.0


def test_gradient_wrt_input_matches_finite_difference():
    mlp = MLP([3, 10, 1], seed=4)
    # Give the raw network a non-trivial normalization.
    mlp._y_mean, mlp._y_std = 2.0, 3.0
    x = np.array([0.3, -0.7, 1.1])
    grad = mlp.gradient_wrt_input(x)
    eps = 1e-6
    for i in range(3):
        xp, xm = x.copy(), x.copy()
        xp[i] += eps
        xm[i] -= eps
        numeric = (mlp.predict(xp[None])[0] - mlp.predict(xm[None])[0]) / (2 * eps)
        assert grad[i] == pytest.approx(numeric, rel=1e-4, abs=1e-7)


def test_gradient_requires_scalar_output():
    with pytest.raises(ValueError):
        MLP([3, 4, 2]).gradient_wrt_input(np.zeros(3))


def test_weights_roundtrip():
    a = MLP([3, 8, 1], seed=5)
    a._y_mean, a._y_std = 1.5, 0.5
    b = MLP([3, 8, 1], seed=99)
    b.set_weights(a.get_weights())
    x = np.random.default_rng(3).normal(size=(7, 3))
    np.testing.assert_allclose(a.predict(x), b.predict(x))


def test_set_weights_validates_count():
    mlp = MLP([3, 8, 1])
    with pytest.raises(ValueError):
        mlp.set_weights(mlp.get_weights()[:-2])


def test_get_weights_returns_copies():
    mlp = MLP([2, 4, 1])
    weights = mlp.get_weights()
    weights[0][:] = 0.0
    assert np.any(mlp.weights[0] != 0.0)


def test_n_parameters():
    mlp = MLP([3, 8, 1])
    assert mlp.n_parameters == 3 * 8 + 8 + 8 * 1 + 1


def test_mse_rmse():
    a = np.array([1.0, 2.0])
    b = np.array([1.0, 4.0])
    assert mse(a, b) == pytest.approx(2.0)
    assert rmse(a, b) == pytest.approx(np.sqrt(2.0))


@given(st.integers(min_value=1, max_value=8), st.integers(min_value=1, max_value=16))
def test_forward_shapes_property(d_in, hidden):
    mlp = MLP([d_in, hidden, 1], seed=0)
    out, acts = mlp.forward(np.zeros((3, d_in)))
    assert out.shape == (3, 1)
    assert len(acts) == 3
