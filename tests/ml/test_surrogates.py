"""Tests for the MPNN and SchNet surrogates (featurization, forces,
transport padding)."""

import pickle

import numpy as np
import pytest

from repro.ml.mpnn import MpnnSurrogate
from repro.ml.schnet import (
    RbfBasis,
    SchnetSurrogate,
    featurize,
    featurize_with_jacobian,
)
from repro.serialize import serialize
from repro.sim.water import make_water_cluster, reference_potential


# -- MPNN ----------------------------------------------------------------------


def test_mpnn_train_predict():
    rng = np.random.default_rng(0)
    x = rng.normal(size=(150, 8))
    y = x[:, 0] * 2 - x[:, 1]
    model = MpnnSurrogate(8, hidden=(24,), seed=0)
    model.train(x, y, epochs=50)
    pred = model.predict(x)
    assert np.corrcoef(pred, y)[0, 1] > 0.8


def test_mpnn_pickle_roundtrip_preserves_predictions():
    rng = np.random.default_rng(1)
    x = rng.normal(size=(50, 6))
    model = MpnnSurrogate(6, hidden=(12,), seed=2)
    model.train(x, x[:, 0], epochs=5)
    clone = pickle.loads(pickle.dumps(model))
    np.testing.assert_allclose(clone.predict(x), model.predict(x))


def test_mpnn_weight_padding_inflates_nominal_size():
    small = MpnnSurrogate(6, hidden=(12,), seed=0, weight_padding=0)
    big = MpnnSurrogate(6, hidden=(12,), seed=0, weight_padding=10_000_000)
    assert serialize(big).nominal_size - serialize(small).nominal_size >= 10_000_000
    # Real bytes stay modest either way.
    assert len(serialize(big).data) < 200_000


# -- RBF featurization ----------------------------------------------------------------


def test_basis_validation():
    with pytest.raises(ValueError):
        RbfBasis(n_centers=1)
    with pytest.raises(ValueError):
        RbfBasis(r_min=5.0, cutoff=4.0)


def test_basis_shapes():
    basis = RbfBasis(n_centers=8, n_species=3)
    assert basis.centers.shape == (8,)
    assert basis.n_pair_channels == 6
    assert basis.n_features == 48


def test_pair_channel_symmetric():
    basis = RbfBasis()
    a = basis.pair_channel(np.array([0, 1, 2]), np.array([2, 0, 2]))
    b = basis.pair_channel(np.array([2, 0, 2]), np.array([0, 1, 2]))
    np.testing.assert_array_equal(a, b)
    # All unordered pairs map to distinct channels.
    pairs = [(i, j) for i in range(3) for j in range(i, 3)]
    channels = {
        int(basis.pair_channel(np.array([i]), np.array([j]))[0]) for i, j in pairs
    }
    assert len(channels) == len(pairs)


def test_featurize_translation_invariant():
    basis = RbfBasis(n_centers=6)
    structure = make_water_cluster(2, seed=0)
    d1 = featurize(structure.positions, structure.types, basis)
    d2 = featurize(structure.positions + 5.0, structure.types, basis)
    np.testing.assert_allclose(d1, d2, atol=1e-12)


def test_featurize_rotation_invariant():
    basis = RbfBasis(n_centers=6)
    structure = make_water_cluster(2, seed=0)
    theta = 0.7
    rot = np.array(
        [
            [np.cos(theta), -np.sin(theta), 0],
            [np.sin(theta), np.cos(theta), 0],
            [0, 0, 1],
        ]
    )
    d1 = featurize(structure.positions, structure.types, basis)
    d2 = featurize(structure.positions @ rot.T, structure.types, basis)
    np.testing.assert_allclose(d1, d2, atol=1e-10)


def test_featurize_permutation_invariant_same_species():
    basis = RbfBasis(n_centers=6)
    structure = make_water_cluster(2, seed=1)
    # Swap the two H atoms of the first water (indices 1 and 2).
    swapped = structure.copy()
    swapped.positions[[1, 2]] = swapped.positions[[2, 1]]
    d1 = featurize(structure.positions, structure.types, basis)
    d2 = featurize(swapped.positions, swapped.types, basis)
    np.testing.assert_allclose(d1, d2, atol=1e-12)


def test_featurize_rejects_unknown_species():
    basis = RbfBasis(n_species=2)
    with pytest.raises(ValueError):
        featurize(np.zeros((2, 3)), np.array([0, 2]), basis)


def test_featurize_single_atom_is_zero():
    basis = RbfBasis()
    assert np.all(featurize(np.zeros((1, 3)), np.array([0]), basis) == 0)


def test_jacobian_matches_finite_difference():
    basis = RbfBasis(n_centers=5)
    structure = make_water_cluster(1, seed=2)
    x = structure.positions
    features, jac = featurize_with_jacobian(x, structure.types, basis)
    eps = 1e-6
    for atom in range(min(structure.n_atoms, 4)):
        for dim in range(3):
            xp, xm = x.copy(), x.copy()
            xp[atom, dim] += eps
            xm[atom, dim] -= eps
            numeric = (
                featurize(xp, structure.types, basis)
                - featurize(xm, structure.types, basis)
            ) / (2 * eps)
            np.testing.assert_allclose(jac[:, atom, dim], numeric, atol=1e-5)


# -- SchNet surrogate ------------------------------------------------------------------


def test_schnet_train_improves_fit():
    potential = reference_potential()
    structures = [make_water_cluster(2, seed=i) for i in range(40)]
    energies = np.array([potential.energy(s) for s in structures])
    model = SchnetSurrogate(RbfBasis(n_centers=8), hidden=(16,), seed=0)
    untrained_rmse = float(
        np.sqrt(np.mean((model.predict(structures) - energies) ** 2))
    )
    model.train(structures, energies, epochs=40)
    trained_rmse = float(
        np.sqrt(np.mean((model.predict(structures) - energies) ** 2))
    )
    assert trained_rmse < untrained_rmse


def test_schnet_forces_are_negative_energy_gradient():
    structures = [make_water_cluster(2, seed=i) for i in range(20)]
    potential = reference_potential()
    energies = np.array([potential.energy(s) for s in structures])
    model = SchnetSurrogate(RbfBasis(n_centers=6), hidden=(12,), seed=1)
    model.train(structures, energies, epochs=10)
    test = structures[0]
    forces = model.predict_forces(test)
    eps = 1e-6
    for atom in range(3):
        for dim in range(3):
            sp, sm = test.copy(), test.copy()
            sp.positions[atom, dim] += eps
            sm.positions[atom, dim] -= eps
            numeric = -(model.predict_energy(sp) - model.predict_energy(sm)) / (2 * eps)
            assert forces[atom, dim] == pytest.approx(numeric, rel=1e-3, abs=1e-5)


def test_schnet_pickle_roundtrip():
    structures = [make_water_cluster(1, seed=i) for i in range(10)]
    model = SchnetSurrogate(RbfBasis(n_centers=6), hidden=(8,), seed=3)
    model.train(structures, np.arange(10, dtype=float), epochs=3)
    clone = pickle.loads(pickle.dumps(model))
    np.testing.assert_allclose(clone.predict(structures), model.predict(structures))


def test_schnet_weight_padding():
    model = SchnetSurrogate(RbfBasis(n_centers=6), hidden=(8,), weight_padding=21_000_000)
    assert serialize(model).nominal_size >= 21_000_000
