"""Tests for the virtual clock."""

import time

import pytest

from repro.net.clock import Clock, Timer, get_clock, reset_clock, scaled_time


def test_now_starts_near_zero():
    clock = Clock(time_scale=0.01)
    assert 0.0 <= clock.now() < 0.5


def test_now_is_monotonic():
    clock = Clock(time_scale=0.001)
    samples = [clock.now() for _ in range(100)]
    assert samples == sorted(samples)


def test_sleep_advances_nominal_time():
    clock = Clock(time_scale=0.001)
    start = clock.now()
    clock.sleep(5.0)  # 5 nominal seconds = 5 ms wall
    elapsed = clock.now() - start
    assert elapsed >= 5.0
    assert elapsed < 50.0  # not wildly more


def test_sleep_scales_wall_time():
    clock = Clock(time_scale=0.001)
    wall_start = time.monotonic()
    clock.sleep(10.0)
    wall = time.monotonic() - wall_start
    assert 0.005 <= wall < 0.5


def test_zero_and_negative_sleep_return_immediately():
    clock = Clock(time_scale=1.0)
    wall_start = time.monotonic()
    clock.sleep(0.0)
    clock.sleep(-3.0)
    assert time.monotonic() - wall_start < 0.05


def test_tiny_sleeps_are_skipped():
    clock = Clock(time_scale=1e-9)
    wall_start = time.monotonic()
    for _ in range(1000):
        clock.sleep(1.0)  # each is 1 ns wall: below the skip threshold
    assert time.monotonic() - wall_start < 0.5


def test_invalid_scale_rejected():
    with pytest.raises(ValueError):
        Clock(time_scale=0.0)
    with pytest.raises(ValueError):
        Clock(time_scale=-1.0)
    with pytest.raises(ValueError):
        Clock(1.0).reset(time_scale=-2.0)


def test_wall_timeout_conversion():
    clock = Clock(time_scale=0.5)
    assert clock.wall_timeout(None) is None
    assert clock.wall_timeout(2.0) == pytest.approx(1.0)
    assert clock.wall_timeout(-1.0) == 0.0


def test_reset_rezeros_epoch():
    clock = Clock(time_scale=0.001)
    clock.sleep(10.0)
    assert clock.now() >= 10.0
    clock.reset()
    assert clock.now() < 5.0


def test_reset_changes_scale():
    clock = Clock(time_scale=0.001)
    clock.reset(time_scale=0.002)
    assert clock.time_scale == 0.002


def test_default_clock_identity():
    assert get_clock() is get_clock()
    returned = reset_clock(0.002)
    assert returned is get_clock()


def test_scaled_time_restores_previous_scale():
    reset_clock(0.002)
    with scaled_time(0.01) as clock:
        assert clock.time_scale == 0.01
    assert get_clock().time_scale == 0.002


def test_timer_measures_nominal_duration():
    clock = reset_clock(0.001)
    with Timer(clock) as timer:
        clock.sleep(3.0)
    assert timer.elapsed >= 3.0
    assert timer.elapsed < 30.0
