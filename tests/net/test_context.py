"""Tests for the execution-placement context."""

import pytest

from repro.net.context import (
    SiteThread,
    at_site,
    current_site,
    require_current_site,
    set_current_site,
)
from repro.net.topology import Site


def test_default_is_unpinned():
    set_current_site(None)
    assert current_site() is None


def test_at_site_sets_and_restores():
    a, b = Site("a"), Site("b")
    set_current_site(None)
    with at_site(a):
        assert current_site() is a
        with at_site(b):
            assert current_site() is b
        assert current_site() is a
    assert current_site() is None


def test_at_site_restores_on_exception():
    a = Site("a")
    set_current_site(None)
    with pytest.raises(RuntimeError):
        with at_site(a):
            raise RuntimeError("boom")
    assert current_site() is None


def test_require_current_site():
    set_current_site(None)
    with pytest.raises(RuntimeError):
        require_current_site()
    with at_site(Site("x")):
        assert require_current_site().name == "x"


def test_site_thread_pins_site():
    site = Site("worker-site")
    seen = []

    def target():
        seen.append(current_site())

    thread = SiteThread(site, target=target)
    thread.start()
    thread.join()
    assert seen == [site]


def test_threads_do_not_inherit_context():
    import threading

    seen = []
    with at_site(Site("parent")):
        thread = threading.Thread(target=lambda: seen.append(current_site()))
        thread.start()
        thread.join()
    assert seen == [None]
