"""Tests for the per-site shared file systems."""

import pytest

from repro.exceptions import FileSystemError
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.fs import FileSystem, MountTable
from repro.net.topology import Site


@pytest.fixture
def fs():
    return FileSystem("vol")


def test_write_read_roundtrip(fs):
    fs.write("a/b.bin", b"hello")
    assert fs.read("a/b.bin") == b"hello"


def test_read_missing_raises(fs):
    with pytest.raises(FileSystemError):
        fs.read("ghost")


def test_size_missing_raises(fs):
    with pytest.raises(FileSystemError):
        fs.size("ghost")


def test_exists_delete(fs):
    fs.write("x", b"1")
    assert fs.exists("x")
    assert fs.delete("x")
    assert not fs.exists("x")
    assert not fs.delete("x")


def test_write_requires_bytes(fs):
    with pytest.raises(TypeError):
        fs.write("x", "not-bytes")  # type: ignore[arg-type]


def test_nominal_size_tracked_separately(fs):
    fs.write("blob", b"tiny", nominal_size=10_000_000)
    assert fs.size("blob") == 10_000_000
    assert fs.read("blob") == b"tiny"
    assert fs.total_bytes() == 10_000_000


def test_nominal_size_defaults_to_real(fs):
    fs.write("x", b"12345")
    assert fs.size("x") == 5


def test_listdir_prefix(fs):
    fs.write("dir/a", b"1")
    fs.write("dir/b", b"2")
    fs.write("other/c", b"3")
    assert fs.listdir("dir/") == ["dir/a", "dir/b"]
    assert len(fs.listdir()) == 3


def test_raw_and_write_raw_skip_charging(fs):
    fs.write_raw("x", b"data", 999)
    assert fs.raw("x") == (b"data", 999)
    with pytest.raises(FileSystemError):
        fs.raw("ghost")


def test_clear(fs):
    fs.write("x", b"1")
    fs.clear()
    assert not fs.exists("x")


def test_io_charges_by_nominal_size():
    fs = FileSystem("vol", write_bandwidth=1e6, read_bandwidth=1e6, op_latency=0.0)
    clock = get_clock()
    start = clock.now()
    fs.write("big", b"x", nominal_size=1_000_000)  # 1 s at 1 MB/s
    write_cost = clock.now() - start
    assert write_cost >= 1.0
    start = clock.now()
    fs.read("big")
    assert clock.now() - start >= 1.0


def test_invalid_parameters():
    with pytest.raises(ValueError):
        FileSystem("v", write_bandwidth=0)
    with pytest.raises(ValueError):
        FileSystem("v", op_latency=-1)


# -- mount table ---------------------------------------------------------------


def test_mount_table_for_site():
    table = MountTable()
    lustre = table.add_volume(FileSystem("lustre"))
    site = Site("login", fs_group="lustre")
    assert table.for_site(site) is lustre


def test_mount_table_via_context():
    table = MountTable()
    lustre = table.add_volume(FileSystem("lustre"))
    site = Site("login", fs_group="lustre")
    with at_site(site):
        assert table.for_site() is lustre


def test_mount_table_no_context_raises():
    table = MountTable()
    with pytest.raises(FileSystemError):
        table.for_site()


def test_mount_table_site_without_fs_raises():
    table = MountTable()
    with pytest.raises(FileSystemError):
        table.for_site(Site("gpu"))


def test_mount_table_unknown_volume():
    table = MountTable()
    with pytest.raises(FileSystemError):
        table.volume("ghost")
    with pytest.raises(FileSystemError):
        table.for_site(Site("x", fs_group="ghost"))


def test_duplicate_volume_rejected():
    table = MountTable()
    table.add_volume(FileSystem("v"))
    with pytest.raises(FileSystemError):
        table.add_volume(FileSystem("v"))


def test_accessible_from():
    table = MountTable()
    table.add_volume(FileSystem("lustre"))
    assert table.accessible_from(Site("a", fs_group="lustre"), "lustre")
    assert not table.accessible_from(Site("b", fs_group="other"), "lustre")
    assert not table.accessible_from(Site("c"), "lustre")
