"""Tests for the Redis-like key-value/queue server and its clients."""

import threading

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import PortPolicyError
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.kvstore import KVClient, KVServer, _payload_size
from repro.net.topology import FixedLatency, Network, Site


@pytest.fixture
def rig():
    net = Network(seed=1)
    login = net.add_site(Site("login", trust_group="hpc"))
    compute = net.add_site(Site("compute", trust_group="hpc"))
    gpu = net.add_site(Site("gpu", trust_group="other"))
    net.add_link(login, compute, FixedLatency(1e-4), 5e9)
    net.add_link(login, gpu, FixedLatency(3e-3), 1.25e9)
    server = KVServer(login)
    return net, login, compute, gpu, server


# -- data operations -----------------------------------------------------------


def test_set_get_delete(rig):
    net, login, *_ , server = rig
    client = KVClient(server, net, site=login)
    client.set("k", b"value")
    assert client.get("k") == b"value"
    assert client.exists("k")
    assert client.delete("k")
    assert not client.exists("k")
    assert client.get("k") is None
    assert not client.delete("k")


def test_incr(rig):
    net, login, *_, server = rig
    client = KVClient(server, net, site=login)
    assert client.incr("counter") == 1
    assert client.incr("counter", 5) == 6


def test_queue_fifo(rig):
    net, login, *_, server = rig
    client = KVClient(server, net, site=login)
    for i in range(5):
        client.rpush("q", i)
    popped = [client.lpop("q") for _ in range(5)]
    assert popped == [0, 1, 2, 3, 4]
    assert client.lpop("q") is None


def test_lpush_puts_at_head(rig):
    net, login, *_, server = rig
    client = KVClient(server, net, site=login)
    client.rpush("q", "first")
    client.lpush("q", "urgent")
    assert client.lpop("q") == "urgent"


def test_llen(rig):
    net, login, *_, server = rig
    client = KVClient(server, net, site=login)
    assert client.llen("q") == 0
    client.rpush("q", 1)
    client.rpush("q", 2)
    assert client.llen("q") == 2


def test_blpop_returns_queued_item(rig):
    net, login, *_, server = rig
    client = KVClient(server, net, site=login)
    client.rpush("q", "item")
    assert client.blpop("q", timeout=1.0) == ("q", "item")


def test_blpop_times_out(rig):
    net, login, *_, server = rig
    client = KVClient(server, net, site=login)
    assert client.blpop("q", timeout=0.2) is None


def test_blpop_across_multiple_queues(rig):
    net, login, *_, server = rig
    client = KVClient(server, net, site=login)
    client.rpush("q2", "x")
    name, value = client.blpop(["q1", "q2"], timeout=1.0)
    assert (name, value) == ("q2", "x")


def test_blpop_wakes_on_concurrent_push(rig):
    net, login, *_, server = rig
    client = KVClient(server, net, site=login)

    def producer():
        get_clock().sleep(1.0)
        KVClient(server, net, site=login).rpush("q", "late")

    thread = threading.Thread(target=producer, daemon=True)
    thread.start()
    assert client.blpop("q", timeout=30.0) == ("q", "late")
    thread.join()


def test_flush(rig):
    net, login, *_, server = rig
    client = KVClient(server, net, site=login)
    client.set("k", 1)
    client.rpush("q", 1)
    server.flush()
    assert not client.exists("k")
    assert client.llen("q") == 0


@given(st.lists(st.integers(), min_size=1, max_size=30))
def test_queue_preserves_order_property(items):
    server = KVServer(Site("solo"))
    for item in items:
        server.rpush("q", item)
    out = [server.lpop("q") for _ in items]
    assert out == items


# -- connection policy -------------------------------------------------------------


def test_same_trust_group_allowed(rig):
    net, login, compute, gpu, server = rig
    KVClient(server, net, site=compute)  # no raise


def test_cross_facility_denied(rig):
    net, login, compute, gpu, server = rig
    with pytest.raises(PortPolicyError):
        KVClient(server, net, site=gpu)


def test_tunnel_bypasses_policy(rig):
    net, login, compute, gpu, server = rig
    client = KVClient(server, net, site=gpu, via_tunnel=True)
    client.set("k", b"x")
    assert client.get("k") == b"x"


def test_policy_checked_per_call_with_context(rig):
    net, login, compute, gpu, server = rig
    client = KVClient(server, net, site=None)  # site from thread context
    with at_site(login):
        client.set("k", 1)
    with at_site(gpu), pytest.raises(PortPolicyError):
        client.get("k")


def test_inbound_site_accepts_anyone():
    net = Network(seed=1)
    cloud = net.add_site(Site("cloud", allows_inbound=True))
    outside = net.add_site(Site("outside"))
    net.add_link(cloud, outside, FixedLatency(1e-3), 1e9)
    server = KVServer(cloud)
    client = KVClient(server, net, site=outside)
    client.set("k", 1)
    assert client.get("k") == 1


# -- latency charging -----------------------------------------------------------------


def test_remote_ops_cost_more_than_local(rig):
    net, login, compute, gpu, server = rig
    from repro.net.clock import reset_clock

    # Coarser scale so the 3 ms link latency is well above the clock's
    # minimum-sleep threshold and wall-noise floor.
    clock = reset_clock(0.05)
    local = KVClient(server, net, site=login)
    remote = KVClient(server, net, site=gpu, via_tunnel=True)

    start = clock.now()
    for _ in range(20):
        local.set("k", b"x" * 100)
    local_cost = clock.now() - start

    start = clock.now()
    for _ in range(20):
        remote.set("k", b"x" * 100)
    remote_cost = clock.now() - start
    assert remote_cost > local_cost


def test_tunnel_bandwidth_cap_slows_bulk(rig):
    net, login, compute, gpu, _ = rig
    # Unbounded server-side processing so the tunnel cap is the only knob.
    server = KVServer(login, name="fast-server", processing_bandwidth=1e15)
    clock = get_clock()
    fast = KVClient(server, net, site=gpu, via_tunnel=True, tunnel_bandwidth=1.25e9)
    slow = KVClient(server, net, site=gpu, via_tunnel=True, tunnel_bandwidth=0.05e9)
    from repro.serialize import Blob, serialize

    payload = serialize(Blob(100_000_000))  # nominal 100 MB, tiny real bytes

    start = clock.now()
    fast.set("k1", payload)
    fast_cost = clock.now() - start
    start = clock.now()
    slow.set("k2", payload)
    slow_cost = clock.now() - start
    assert slow_cost > fast_cost * 2


# -- payload sizing --------------------------------------------------------------------


def test_payload_size_bytes_and_str():
    assert _payload_size(b"abc") == 3
    assert _payload_size("abcd") == 4


def test_payload_size_respects_nominal_attribute():
    class Fake:
        nominal_size = 12345

    assert _payload_size(Fake()) == 12345


def test_payload_size_scalars_and_containers():
    assert _payload_size(None) == 1
    assert _payload_size(1.5) == 8
    assert _payload_size([b"ab", b"cd"]) == 4 + 8
    assert _payload_size(object()) == 64
