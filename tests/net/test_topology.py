"""Tests for sites, links, latency models, and connection policy."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import TopologyError
from repro.net.topology import (
    LOCALHOST_LATENCY_S,
    FixedLatency,
    LogNormalLatency,
    Network,
    Site,
    UniformLatency,
)


def make_net():
    net = Network(seed=7)
    a = net.add_site(Site("a", fs_group="fs1", trust_group="fac"))
    b = net.add_site(Site("b", fs_group="fs1", trust_group="fac"))
    c = net.add_site(Site("c", allows_inbound=True))
    net.add_link(a, b, FixedLatency(0.001), 1e9)
    net.add_link(a, c, FixedLatency(0.010), 1e8)
    return net, a, b, c


# -- latency models ---------------------------------------------------------


def test_fixed_latency():
    model = FixedLatency(0.5)
    assert model.sample(random.Random(0)) == 0.5
    assert model.typical == 0.5
    with pytest.raises(ValueError):
        FixedLatency(-1.0)


def test_uniform_latency_bounds():
    model = UniformLatency(0.1, 0.2)
    rng = random.Random(3)
    for _ in range(200):
        assert 0.1 <= model.sample(rng) <= 0.2
    assert model.typical == pytest.approx(0.15)
    with pytest.raises(ValueError):
        UniformLatency(0.2, 0.1)
    with pytest.raises(ValueError):
        UniformLatency(-0.1, 0.2)


def test_lognormal_latency_positive_and_capped():
    model = LogNormalLatency(0.5, sigma=1.0, cap=0.9)
    rng = random.Random(5)
    samples = [model.sample(rng) for _ in range(500)]
    assert all(0 < s <= 0.9 for s in samples)
    assert model.typical == 0.5
    with pytest.raises(ValueError):
        LogNormalLatency(0.0)
    with pytest.raises(ValueError):
        LogNormalLatency(0.1, sigma=-1)


@given(st.floats(min_value=1e-6, max_value=10.0), st.floats(min_value=0.0, max_value=2.0))
def test_lognormal_samples_always_positive(median, sigma):
    model = LogNormalLatency(median, sigma)
    rng = random.Random(11)
    assert all(model.sample(rng) > 0 for _ in range(20))


# -- network construction -----------------------------------------------------


def test_duplicate_site_rejected():
    net = Network()
    net.add_site(Site("x"))
    with pytest.raises(TopologyError):
        net.add_site(Site("x"))


def test_self_link_rejected():
    net = Network()
    net.add_site(Site("x"))
    with pytest.raises(TopologyError):
        net.add_link("x", "x", FixedLatency(0.1), 1e9)


def test_link_to_unknown_site_rejected():
    net = Network()
    net.add_site(Site("x"))
    with pytest.raises(TopologyError):
        net.add_link("x", "ghost", FixedLatency(0.1), 1e9)


def test_unknown_site_lookup():
    net = Network()
    with pytest.raises(TopologyError):
        net.site("ghost")


def test_bandwidth_must_be_positive():
    net = Network()
    net.add_site(Site("x"))
    net.add_site(Site("y"))
    with pytest.raises(ValueError):
        net.add_link("x", "y", FixedLatency(0.1), 0.0)


# -- latency / transfer queries ---------------------------------------------------


def test_same_site_latency_is_localhost():
    net, a, _, _ = make_net()
    assert net.latency(a, a) == LOCALHOST_LATENCY_S


def test_link_latency_sampled():
    net, a, b, _ = make_net()
    assert net.latency(a, b) == 0.001
    assert net.rtt(a, b) == pytest.approx(0.002)


def test_missing_link_raises_without_default():
    net, _, b, c = make_net()
    with pytest.raises(TopologyError):
        net.latency(b, c)


def test_default_link_used_when_missing():
    from repro.net.topology import Link

    net = Network(default_link=Link("any", "any", FixedLatency(0.2), 1e6))
    net.add_site(Site("x"))
    net.add_site(Site("y"))
    assert net.latency("x", "y") == 0.2


def test_transfer_time_includes_bandwidth():
    net, a, b, _ = make_net()
    t = net.transfer_time(a, b, 1_000_000_000)  # 1 GB over 1 GB/s
    assert t == pytest.approx(0.001 + 1.0)


def test_transfer_time_rejects_negative_bytes():
    net, a, b, _ = make_net()
    with pytest.raises(ValueError):
        net.transfer_time(a, b, -1)


def test_local_transfer_is_fast():
    net, a, _, _ = make_net()
    assert net.transfer_time(a, a, 10_000_000) < 0.01


# -- filesystem and trust policies --------------------------------------------------


def test_shares_filesystem():
    net, a, b, c = make_net()
    assert net.shares_filesystem(a, b)
    assert not net.shares_filesystem(a, c)
    assert not net.shares_filesystem(c, c)  # no fs_group at all


def test_can_connect_same_site():
    net, a, _, _ = make_net()
    assert net.can_connect(a, a)


def test_can_connect_same_trust_group():
    net, a, b, _ = make_net()
    assert net.can_connect(a, b)
    assert net.can_connect(b, a)


def test_can_connect_inbound_site():
    net, a, _, c = make_net()
    assert net.can_connect(a, c)  # c allows inbound
    assert not net.can_connect(c, a)  # a does not


def test_paper_testbed_policies(testbed):
    net = testbed.network
    # Intra-facility pilot connections work.
    assert net.can_connect(testbed.theta_compute, testbed.theta_login)
    # The GPU box cannot dial the HPC login node (needs a tunnel).
    assert not net.can_connect(testbed.venti, testbed.theta_login)
    # Everyone can call the clouds.
    for site in (testbed.theta_login, testbed.theta_compute, testbed.venti):
        assert net.can_connect(site, testbed.faas_cloud)
        assert net.can_connect(site, testbed.globus_cloud)
    # Login and compute share Lustre; Venti mounts neither.
    assert net.shares_filesystem(testbed.theta_login, testbed.theta_compute)
    assert not net.shares_filesystem(testbed.venti, testbed.theta_login)


def test_paper_testbed_has_all_links(testbed):
    names = [s.name for s in testbed.network.sites]
    assert set(names) >= {
        "theta-login",
        "theta-compute",
        "venti",
        "uchicago-login",
        "faas-cloud",
        "globus-cloud",
    }
    # All pairs used by the experiments have finite latency.
    pairs = [
        ("theta-login", "theta-compute"),
        ("theta-login", "venti"),
        ("uchicago-login", "theta-compute"),
        ("venti", "globus-cloud"),
        ("theta-login", "faas-cloud"),
    ]
    for a, b in pairs:
        assert testbed.network.latency(a, b) > 0


def test_latency_sampling_is_seed_deterministic():
    net1, a1, b1, _ = make_net()
    net2, a2, b2, _ = make_net()
    # FixedLatency is trivially deterministic; check log-normal too.
    n1, n2 = Network(seed=9), Network(seed=9)
    for net in (n1, n2):
        net.add_site(Site("p"))
        net.add_site(Site("q"))
        net.add_link("p", "q", LogNormalLatency(0.01, 0.5), 1e9)
    samples1 = [n1.latency("p", "q") for _ in range(20)]
    samples2 = [n2.latency("p", "q") for _ in range(20)]
    assert samples1 == samples2
