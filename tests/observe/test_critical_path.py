"""Trace reconstruction: grouping, orphan detection, critical path."""

from __future__ import annotations

from repro.observe import (
    Span,
    critical_path,
    find_orphans,
    group_traces,
    trace_root,
)


def _span(name, trace="t1", span_id=None, parent=None, start=0.0, end=1.0):
    return Span(
        name,
        trace_id=trace,
        span_id=span_id or name,
        parent_id=parent,
        start=start,
        end=end,
    )


def _sample_trace():
    """root [0, 10]; submit [0, 1]; run [1.5, 9]; compute [2, 8.5] under
    run; collect [9, 9.8].  Gap 1..1.5 is the root's untraced queueing."""
    return [
        _span("task", start=0.0, end=10.0),
        _span("submit", parent="task", start=0.0, end=1.0),
        _span("run", parent="task", start=1.5, end=9.0),
        _span("compute", parent="run", start=2.0, end=8.5),
        _span("collect", parent="task", start=9.0, end=9.8),
    ]


def test_group_traces_buckets_and_sorts():
    spans = [
        _span("b", trace="t2", start=5.0),
        _span("late", start=3.0),
        _span("early", start=1.0),
    ]
    traces = group_traces(spans)
    assert set(traces) == {"t1", "t2"}
    assert [s.name for s in traces["t1"]] == ["early", "late"]


def test_find_orphans_flags_missing_parents_within_trace_only():
    ok = _span("child", parent="task")
    root = _span("task")
    orphan = _span("lost", span_id="lost", parent="never-recorded")
    # Same span id existing in a *different* trace must not satisfy the
    # parent lookup.
    other = _span("never-recorded", trace="t2", span_id="never-recorded")
    assert find_orphans([root, ok, orphan, other]) == [orphan]
    assert find_orphans([root, ok]) == []


def test_trace_root_prefers_longest_parentless_span():
    hop = _span("hop", span_id="h", start=0.0, end=1.0)  # parentless hop
    root = _span("task", start=0.0, end=10.0)
    assert trace_root([hop, root]) is root
    assert trace_root([_span("x", parent="missing")]) is None


def test_critical_path_walks_dominant_chain():
    path = critical_path(_sample_trace())
    names = [entry.span.name for entry in path]
    # submit is NOT on the path: the backward sweep from root's end reaches
    # run.start=1.5 and submit (end 1.0) finished before it, so it chains;
    # actually submit.end <= 1.5, so it is picked as the predecessor.
    assert names == ["task", "submit", "run", "compute", "collect"]
    depths = {e.span.name: e.depth for e in path}
    assert depths == {"task": 0, "submit": 1, "run": 1, "compute": 2, "collect": 1}


def test_critical_path_self_times():
    entries = {e.span.name: e for e in critical_path(_sample_trace())}
    # Root: 10 s total, children on path cover [0,1] + [1.5,9] + [9,9.8]
    # = 9.3 s, so 0.7 s of self (queueing gaps).
    assert abs(entries["task"].self_seconds - 0.7) < 1e-9
    # run: 7.5 s, compute covers 6.5 s -> 1 s self.
    assert abs(entries["run"].self_seconds - 1.0) < 1e-9
    # Leaves own their whole duration.
    assert abs(entries["compute"].self_seconds - 6.5) < 1e-9


def test_critical_path_handles_overlapping_child():
    """A child whose end overruns the next hop's start stays on the path
    (the worker.run / fabric.collect overlap from the real fabric)."""
    spans = [
        _span("task", start=0.0, end=10.0),
        _span("run", parent="task", start=1.0, end=8.2),
        _span("collect", parent="task", start=8.0, end=10.0),
    ]
    names = [e.span.name for e in critical_path(spans)]
    assert names == ["task", "run", "collect"]
    # Overlap must not be double-counted in the root's coverage.
    root = next(e for e in critical_path(spans) if e.span.name == "task")
    assert abs(root.self_seconds - 1.0) < 1e-9  # only [0,1] is uncovered


def test_critical_path_empty_cases():
    assert critical_path([]) == []
    assert critical_path([_span("open", end=None)]) == []
    # Children missing timestamps are skipped, not fatal.
    spans = [
        _span("task", start=0.0, end=2.0),
        _span("broken", parent="task", start=None, end=None),
    ]
    assert [e.span.name for e in critical_path(spans)] == ["task"]
