"""Exporters: JSONL round-trip, console summaries, report tables."""

from __future__ import annotations

from repro.observe import (
    MetricsRegistry,
    Span,
    load_spans_jsonl,
    metrics_report_table,
    render_critical_path,
    render_span_summary,
    span_summary,
    spans_report_table,
    write_spans_jsonl,
)


def _trace():
    return [
        Span("task", trace_id="t1", span_id="root", start=0.0, end=10.0),
        Span(
            "worker.run",
            trace_id="t1",
            span_id="run",
            parent_id="root",
            start=1.0,
            end=9.0,
            site="theta-login",
            tags={"topic": "simulate"},
        ),
        Span("task", trace_id="t2", span_id="root2", start=0.0, end=4.0),
    ]


def test_jsonl_round_trip(tmp_path):
    path = tmp_path / "spans.jsonl"
    spans = _trace()
    assert write_spans_jsonl(spans, path) == 3
    loaded = load_spans_jsonl(path)
    assert [s.to_dict() for s in loaded] == [s.to_dict() for s in spans]
    # Blank lines are tolerated (hand-edited files, concatenated shards).
    path.write_text(path.read_text() + "\n\n")
    assert len(load_spans_jsonl(path)) == 3


def test_span_summary_aggregates_by_name():
    summary = span_summary(_trace())
    assert summary["task"] == {"count": 2, "median": 7.0, "mean": 7.0, "max": 10.0}
    assert summary["worker.run"]["count"] == 1
    # Spans without both timestamps don't contribute.
    open_span = Span("task", trace_id="t3", span_id="x", start=0.0, end=None)
    assert span_summary([open_span]) == {}


def test_render_span_summary_header_and_units():
    text = render_span_summary(_trace())
    assert "3 spans in 2 traces" in text
    assert "worker.run" in text
    assert "7.00s" in text  # >=1 s renders in seconds
    short = render_span_summary(
        [Span("hop", trace_id="t", span_id="s", start=0.0, end=0.25)]
    )
    assert "250ms" in short  # sub-second renders in milliseconds


def test_render_critical_path_shows_chain_and_site():
    text = render_critical_path(_trace(), "t1")
    assert "critical path: trace t1" in text
    assert "task" in text and "worker.run" in text
    assert "@theta-login" in text
    assert "self" in text
    assert "not found" in render_critical_path(_trace(), "nope")


def test_spans_report_table_rows_are_informational():
    table = spans_report_table(_trace())
    labels = [row.label for row in table.rows]
    assert labels == ["task", "worker.run"]
    assert all(row.holds is None for row in table.rows)
    assert "median x2" in table.rows[0].measured


def test_metrics_report_table_covers_all_instruments():
    registry = MetricsRegistry()
    registry.counter("polls", endpoint="theta").inc(12)
    registry.gauge("depth").set(3)
    registry.histogram("wait_s").observe(0.5)
    table = metrics_report_table(registry)
    labels = [row.label for row in table.rows]
    assert "polls{endpoint=theta}" in labels
    assert "depth" in labels
    assert "wait_s" in labels
    rendered = table.render()
    assert "12" in rendered and "peak 3" in rendered
