"""Metrics registry: instruments, labels, aggregation, zero-overhead."""

from __future__ import annotations

import json
import threading

import pytest

from repro.observe import (
    MetricsRegistry,
    counter_inc,
    gauge_add,
    gauge_set,
    get_metrics,
    metrics_enabled,
    observe,
    set_metrics,
)


def test_disabled_helpers_are_noops():
    assert not metrics_enabled()
    counter_inc("a")
    gauge_set("b", 3)
    gauge_add("b", 1)
    observe("c", 0.5)
    assert get_metrics() is None


def test_counter_increments_and_rejects_negative():
    registry = MetricsRegistry()
    counter = registry.counter("tasks")
    counter.inc()
    counter.inc(2.5)
    assert counter.value == 3.5
    with pytest.raises(ValueError):
        counter.inc(-1)


def test_labels_fan_out_and_get_or_create_is_stable():
    registry = MetricsRegistry()
    a = registry.counter("polls", endpoint="theta")
    b = registry.counter("polls", endpoint="venti")
    assert a is not b
    assert registry.counter("polls", endpoint="theta") is a
    a.inc(3)
    b.inc(1)
    assert registry.counter_total("polls") == 4.0


def test_gauge_tracks_high_water():
    gauge = MetricsRegistry().gauge("depth")
    gauge.set(5)
    gauge.set(2)
    gauge.add(1)
    assert gauge.value == 3
    assert gauge.high_water == 5


def test_histogram_summary():
    hist = MetricsRegistry().histogram("lat")
    for value in [0.1, 0.2, 0.3, 0.4, 10.0]:
        hist.observe(value)
    stats = hist.summary()
    assert stats["count"] == 5
    assert stats["median"] == 0.3
    assert stats["max"] == 10.0
    assert hist.sum == pytest.approx(11.0)


def test_empty_histogram_summary_is_zeroes():
    stats = MetricsRegistry().histogram("empty").summary()
    assert stats == {"count": 0, "mean": 0.0, "median": 0.0, "p95": 0.0, "max": 0.0}


def test_module_helpers_route_to_installed_registry():
    registry = MetricsRegistry()
    set_metrics(registry)
    counter_inc("submitted", topic="simulate")
    counter_inc("submitted", 2, topic="simulate")
    gauge_set("depth", 7, pool="cpu")
    observe("wait_s", 1.25)
    assert registry.counter("submitted", topic="simulate").value == 3
    assert registry.gauge("depth", pool="cpu").high_water == 7
    assert registry.histogram("wait_s").count == 1


def test_snapshot_is_json_serializable_and_render_mentions_everything():
    registry = MetricsRegistry()
    registry.counter("hits", store="local").inc(4)
    registry.gauge("active").set(2)
    registry.histogram("gap_s", pool="cpu").observe(0.5)
    snapshot = registry.snapshot()
    json.dumps(snapshot)  # must not raise
    assert snapshot["counters"][0]["value"] == 4
    text = registry.render()
    for needle in ("hits{store=local}", "active", "gap_s{pool=cpu}", "median"):
        assert needle in text


def test_concurrent_increments_do_not_lose_updates():
    registry = MetricsRegistry()
    set_metrics(registry)

    def spin():
        for _ in range(500):
            counter_inc("spins")

    threads = [threading.Thread(target=spin) for _ in range(8)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert registry.counter("spins").value == 4000
