"""Tracer core: live nesting, reconstruction, propagation, zero-overhead."""

from __future__ import annotations

import pickle
import threading

from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.observe import (
    Span,
    Tracer,
    current_context,
    current_span,
    new_task_trace,
    record_span,
    set_tracer,
    trace_span,
    tracing_enabled,
)
from repro.observe.span import _NOOP_SPAN


def test_disabled_is_noop_singleton():
    assert not tracing_enabled()
    span = trace_span("anything", parent=("t", "s"), tag=1)
    assert span is _NOOP_SPAN
    with span as inner:
        assert inner.set_tag("k", "v") is inner
        assert inner.context is None
    assert record_span("hop", start=0.0, end=1.0) is None
    assert new_task_trace("task-1") is None
    assert current_span() is None and current_context() is None


def test_live_span_records_timestamps_and_tags():
    tracer = Tracer()
    set_tracer(tracer)
    clock = get_clock()
    before = clock.now()
    with trace_span("work", method="simulate") as span:
        clock.sleep(0.5)
        span.set_tag("late", True)
    [stored] = tracer.spans()
    assert stored is span
    assert stored.name == "work"
    assert stored.tags == {"method": "simulate", "late": True}
    assert stored.start >= before
    assert stored.duration >= 0.5 - 1e-6


def test_nesting_parents_inner_to_outer_on_same_thread():
    tracer = Tracer()
    set_tracer(tracer)
    with trace_span("outer") as outer:
        assert current_span() is outer
        with trace_span("inner") as inner:
            assert inner.trace_id == outer.trace_id
            assert inner.parent_id == outer.span_id
        assert current_span() is outer
    assert current_span() is None
    assert len(tracer.spans()) == 2


def test_explicit_parent_tuple_beats_tls():
    tracer = Tracer()
    set_tracer(tracer)
    ctx = ("trace-A", "span-A")
    with trace_span("outer"):
        with trace_span("joined", parent=ctx) as joined:
            assert joined.trace_id == "trace-A"
            assert joined.parent_id == "span-A"


def test_new_task_trace_preallocates_root_span_id():
    set_tracer(Tracer())
    ctx = new_task_trace("task-42")
    assert ctx is not None
    trace_id, root_span_id = ctx
    assert trace_id == "task-42"
    # Recording the root later with the pre-allocated id keeps children
    # attached (no orphan window while the task is in flight).
    tracer = Tracer()
    set_tracer(tracer)
    record_span("child", start=1.0, end=2.0, parent=ctx)
    record_span("task", trace_id=trace_id, span_id=root_span_id, start=0.0, end=3.0)
    child, root = tracer.spans()
    assert child.parent_id == root.span_id


def test_trace_context_is_pickleable():
    set_tracer(Tracer())
    ctx = new_task_trace("task-7")
    assert pickle.loads(pickle.dumps(ctx)) == ctx


def test_record_span_tolerates_missing_timestamps():
    tracer = Tracer()
    set_tracer(tracer)
    assert record_span("hop", start=None, end=1.0) is None
    assert record_span("hop", start=1.0, end=None) is None
    assert len(tracer.spans()) == 0


def test_span_stack_is_thread_local():
    tracer = Tracer()
    set_tracer(tracer)
    seen = {}

    def worker():
        seen["ctx"] = current_context()
        with trace_span("worker-side") as span:
            seen["trace"] = span.trace_id

    with trace_span("main-side") as outer:
        thread = threading.Thread(target=worker)
        thread.start()
        thread.join()
    assert seen["ctx"] is None  # the other thread does not inherit our stack
    assert seen["trace"] != outer.trace_id  # it started a fresh trace


def test_span_captures_site(testbed):
    tracer = Tracer()
    set_tracer(tracer)
    with at_site(testbed.theta_login):
        with trace_span("pinned"):
            pass
    [span] = tracer.spans()
    assert span.site == testbed.theta_login.name


def test_span_round_trips_through_dict():
    span = Span(
        "hop",
        trace_id="t1",
        parent_id="p1",
        start=1.0,
        end=2.5,
        site="theta-login",
        tags={"topic": "simulate"},
    )
    clone = Span.from_dict(span.to_dict())
    assert clone.to_dict() == span.to_dict()
    assert clone.duration == 1.5


def test_exception_inside_span_is_tagged_and_stored():
    tracer = Tracer()
    set_tracer(tracer)
    try:
        with trace_span("failing"):
            raise ValueError("boom")
    except ValueError:
        pass
    [span] = tracer.spans()
    assert span.end is not None
    assert "boom" in span.tags["error"]
