"""Tests for channels, the HTEX-like executor, and the dataflow kernel."""

import pytest

from repro.exceptions import PortPolicyError, TaskError, WorkflowError
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.parsl import DataFlowKernel, DirectChannel, HtexExecutor, SSHTunnel
from repro.resources import WorkerPool
from repro.serialize import Blob


def _mul(a, b):
    return a * b


def _fail():
    raise RuntimeError("worker exploded")


# -- channels -----------------------------------------------------------------


def test_direct_channel_allowed_within_facility(testbed):
    DirectChannel().validate(
        testbed.network, testbed.theta_compute, testbed.theta_login
    )


def test_direct_channel_denied_across_facilities(testbed):
    with pytest.raises(PortPolicyError):
        DirectChannel().validate(testbed.network, testbed.venti, testbed.theta_login)


def test_tunnel_always_validates(testbed):
    SSHTunnel().validate(testbed.network, testbed.venti, testbed.theta_login)


def test_tunnel_caps_bandwidth(testbed):
    direct = DirectChannel()
    tunnel = SSHTunnel(bandwidth_cap=0.1e9)
    nbytes = 1_000_000_000
    t_direct = direct.transfer_time(
        testbed.network, testbed.theta_login, testbed.venti, nbytes
    )
    t_tunnel = tunnel.transfer_time(
        testbed.network, testbed.theta_login, testbed.venti, nbytes
    )
    assert t_tunnel > t_direct * 2


def test_channel_cap_ignored_same_site(testbed):
    tunnel = SSHTunnel(bandwidth_cap=1.0)  # absurdly slow cap
    t = tunnel.transfer_time(
        testbed.network, testbed.theta_login, testbed.theta_login, 10_000_000
    )
    assert t < 1.0


# -- executor ---------------------------------------------------------------------


@pytest.fixture
def cpu_executor(testbed):
    pool = WorkerPool(testbed.theta_compute, 3, name="parsl-cpu")
    executor = HtexExecutor(
        "cpu", testbed.theta_login, pool, testbed.network, channel=DirectChannel()
    ).start()
    yield executor
    executor.shutdown()


def test_executor_runs_tasks(cpu_executor, testbed):
    with at_site(testbed.theta_login):
        futures = [cpu_executor.submit(_mul, i, b=2) for i in range(8)]
    assert [f.result(timeout=30) for f in futures] == [i * 2 for i in range(8)]


def test_executor_propagates_errors(cpu_executor, testbed):
    with at_site(testbed.theta_login):
        future = cpu_executor.submit(_fail)
    with pytest.raises(TaskError) as excinfo:
        future.result(timeout=30)
    assert "worker exploded" in str(excinfo.value)
    assert excinfo.value.remote_traceback is not None


def test_executor_rejects_submit_before_start(testbed):
    pool = WorkerPool(testbed.theta_compute, 1, name="never-started")
    executor = HtexExecutor("x", testbed.theta_login, pool, testbed.network)
    with pytest.raises(RuntimeError):
        executor.submit(_mul, 1, b=1)


def test_executor_validates_channel_at_construction(testbed):
    pool = WorkerPool(testbed.venti, 1, name="gpu")
    with pytest.raises(PortPolicyError):
        HtexExecutor(
            "gpu", testbed.theta_login, pool, testbed.network, channel=DirectChannel()
        )


def test_executor_with_tunnel_reaches_gpu_site(testbed):
    pool = WorkerPool(testbed.venti, 2, name="gpu-tunnel")
    executor = HtexExecutor(
        "gpu", testbed.theta_login, pool, testbed.network, channel=SSHTunnel()
    ).start()
    try:
        with at_site(testbed.theta_login):
            future = executor.submit(_mul, 6, b=7)
        assert future.result(timeout=30) == 42
    finally:
        executor.shutdown()


def test_large_payload_costs_more_over_tunnel(testbed):
    pool = WorkerPool(testbed.venti, 1, name="gpu-big")
    executor = HtexExecutor(
        "gpu", testbed.theta_login, pool, testbed.network, channel=SSHTunnel()
    ).start()
    clock = get_clock()

    def _identity(x):
        return None

    try:
        with at_site(testbed.theta_login):
            start = clock.now()
            executor.submit(_identity, Blob(1_000)).result(timeout=60)
            small = clock.now() - start
            start = clock.now()
            executor.submit(_identity, Blob(2_000_000_000)).result(timeout=60)
            large = clock.now() - start
        assert large > small * 3
    finally:
        executor.shutdown()


# -- dataflow kernel ------------------------------------------------------------------


@pytest.fixture
def dfk(testbed):
    cpu = HtexExecutor(
        "cpu",
        testbed.theta_login,
        WorkerPool(testbed.theta_compute, 2, name="dfk-cpu"),
        testbed.network,
    )
    gpu = HtexExecutor(
        "gpu",
        testbed.theta_login,
        WorkerPool(testbed.venti, 2, name="dfk-gpu"),
        testbed.network,
        channel=SSHTunnel(),
    )
    kernel = DataFlowKernel([cpu, gpu]).start()
    yield kernel
    kernel.shutdown()


def test_dfk_routes_by_label(dfk, testbed):
    with at_site(testbed.theta_login):
        f_cpu = dfk.submit(_mul, 2, b=3, executor="cpu")
        f_gpu = dfk.submit(_mul, 4, b=5, executor="gpu")
    assert f_cpu.result(timeout=30) == 6
    assert f_gpu.result(timeout=30) == 20


def test_dfk_default_executor(dfk, testbed):
    with at_site(testbed.theta_login):
        future = dfk.submit(_mul, 3, b=3)
    assert future.result(timeout=30) == 9


def test_dfk_unknown_label(dfk, testbed):
    with at_site(testbed.theta_login):
        with pytest.raises(WorkflowError):
            dfk.submit(_mul, 1, b=1, executor="tpu")


def test_dfk_dependency_chaining(dfk, testbed):
    with at_site(testbed.theta_login):
        first = dfk.submit(_mul, 2, b=5, executor="cpu")
        second = dfk.submit(_mul, first, b=10, executor="gpu")
    assert second.result(timeout=30) == 100


def test_dfk_dependency_failure_propagates(dfk, testbed):
    with at_site(testbed.theta_login):
        first = dfk.submit(_fail, executor="cpu")
        second = dfk.submit(_mul, first, b=2, executor="cpu")
    with pytest.raises(TaskError):
        second.result(timeout=30)


def test_dfk_needs_executors():
    with pytest.raises(WorkflowError):
        DataFlowKernel([])


def test_dfk_unique_labels(testbed):
    make = lambda name: HtexExecutor(
        name,
        testbed.theta_login,
        WorkerPool(testbed.theta_compute, 1, name=f"p-{id(object())}"),
        testbed.network,
    )
    a, b = make("same"), make("same")
    with pytest.raises(WorkflowError):
        DataFlowKernel([a, b])


def test_dfk_submit_before_start(testbed):
    cpu = HtexExecutor(
        "cpu",
        testbed.theta_login,
        WorkerPool(testbed.theta_compute, 1, name="unstarted"),
        testbed.network,
    )
    kernel = DataFlowKernel([cpu])
    with pytest.raises(WorkflowError):
        kernel.submit(_mul, 1, b=1)
