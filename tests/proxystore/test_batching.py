"""Tests for fused batch puts (§V-D1's transfer-fusion optimization)."""

import pytest

from repro.exceptions import StoreError
from repro.net.context import at_site
from repro.net.defaults import PaperConstants
from repro.net.kvstore import KVServer
from repro.net.topology import UniformLatency
from repro.proxystore import (
    FileConnector,
    GlobusConnector,
    RedisConnector,
    Store,
)
from repro.serialize import Blob
from repro.transfer import TransferClient, TransferEndpoint, TransferService


def test_put_batch_roundtrip_redis(testbed):
    store = Store(
        "batch-redis", RedisConnector(KVServer(testbed.theta_login), testbed.network)
    )
    with at_site(testbed.theta_login):
        keys = store.put_batch(["a", "b", "c"])
        assert [store.get(k) for k in keys] == ["a", "b", "c"]


def test_put_batch_roundtrip_file(testbed):
    store = Store(
        "batch-file", FileConnector(testbed.mounts.volume("theta-lustre"))
    )
    with at_site(testbed.theta_login):
        keys = store.put_batch([1, 2])
        assert [store.get(k) for k in keys] == [1, 2]


def test_put_batch_key_mismatch(testbed):
    store = Store(
        "batch-bad", RedisConnector(KVServer(testbed.theta_login), testbed.network)
    )
    with at_site(testbed.theta_login):
        with pytest.raises(StoreError):
            store.put_batch(["a", "b"], keys=["only-one"])


def test_put_batch_explicit_keys(testbed):
    store = Store(
        "batch-keys", RedisConnector(KVServer(testbed.theta_login), testbed.network)
    )
    with at_site(testbed.theta_login):
        keys = store.put_batch(["x"], keys=["my-key"])
        assert keys == ["my-key"]
        assert store.get("my-key") == "x"


@pytest.fixture
def globus_store(testbed):
    constants = PaperConstants(
        globus_request_latency=UniformLatency(0.4, 0.5),
        globus_transfer_base=UniformLatency(0.3, 0.4),
        globus_poll_interval=0.05,
        globus_concurrent_transfer_limit=2,
    )
    service = TransferService(testbed.globus_cloud, testbed.network, constants).start()
    ep_a = TransferEndpoint(
        "ba", testbed.theta_login, testbed.mounts.volume("theta-lustre")
    )
    ep_b = TransferEndpoint("bb", testbed.venti, testbed.mounts.volume("venti-local"))
    service.register_endpoint(ep_a)
    service.register_endpoint(ep_b)
    store = Store(
        "batch-globus",
        GlobusConnector(
            TransferClient(service, user="batch"),
            {testbed.theta_login.name: ep_a, testbed.venti.name: ep_b},
        ),
    )
    yield testbed, service, store
    store.close()
    service.stop()


def test_globus_batch_is_one_transfer_task(globus_store):
    testbed, service, store = globus_store
    with at_site(testbed.theta_login):
        keys = store.put_batch([Blob(100_000) for _ in range(5)])
    connector: GlobusConnector = store.connector  # type: ignore[assignment]
    task_ids = {connector.transfer_task_ids(k)[testbed.venti.name] for k in keys}
    assert len(task_ids) == 1  # all five objects fused into one task


def test_globus_batch_resolves_remotely(globus_store):
    testbed, service, store = globus_store
    with at_site(testbed.theta_login):
        proxies = store.proxy_batch([Blob(50_000, tag=str(i)) for i in range(3)])
    with at_site(testbed.venti):
        for index, proxy in enumerate(proxies):
            assert proxy == Blob(50_000, tag=str(index))


def test_globus_batch_cheaper_than_separate_puts(globus_store):
    """Fusing N puts pays one HTTPS submission instead of N (§V-D1)."""
    from repro.net.clock import get_clock

    testbed, service, store = globus_store
    clock = get_clock()
    objs = [Blob(10_000, tag=f"s{i}") for i in range(6)]
    with at_site(testbed.theta_login):
        start = clock.now()
        for obj in objs:
            store.put(obj)
        separate = clock.now() - start
        start = clock.now()
        store.put_batch([Blob(10_000, tag=f"b{i}") for i in range(6)])
        fused = clock.now() - start
    assert fused < 0.5 * separate


def test_empty_batch_is_noop(globus_store):
    testbed, service, store = globus_store
    with at_site(testbed.theta_login):
        assert store.put_batch([]) == []
