"""Tests for the byte-budgeted, policy-driven :class:`SiteCache`."""

import pytest

from repro.net.clock import get_clock
from repro.observe import MetricsRegistry, set_metrics
from repro.proxystore import SiteCache
from repro.proxystore.cache import make_policy


@pytest.fixture
def metrics():
    registry = MetricsRegistry()
    set_metrics(registry)
    yield registry
    set_metrics(None)


def test_byte_budget_is_never_exceeded():
    cache = SiteCache(100)
    for i in range(50):
        cache.put(f"k{i}", i, 30)
        assert cache.bytes_used <= 100
    stats = cache.stats()
    assert stats.bytes_used <= stats.bytes_budget
    assert stats.entries == 3  # 3 x 30 fits, a 4th would overflow


def test_lru_evicts_least_recently_used():
    cache = SiteCache(100)
    cache.put("a", 1, 40)
    cache.put("b", 2, 40)
    assert cache.get("a") == (True, 1)  # touch a; b is now LRU
    cache.put("c", 3, 40)
    assert cache.contains("a") and cache.contains("c")
    assert not cache.contains("b")


def test_lfu_keeps_hot_entries():
    cache = SiteCache(100, policy="lfu")
    cache.put("hot", 1, 40)
    cache.put("cold", 2, 40)
    for _ in range(5):
        cache.get("hot")
    cache.get("cold")
    cache.put("new", 3, 40)
    assert cache.contains("hot")
    assert not cache.contains("cold")


def test_ttl_expires_entries_lazily():
    clock = get_clock()
    cache = SiteCache(1000, policy="ttl", ttl=10.0)
    cache.put("k", 1, 10)
    clock.sleep(5.0)
    assert cache.get("k") == (True, 1)
    clock.sleep(6.0)  # inserted_at + 11 > ttl
    assert cache.get("k") == (False, None)
    assert not cache.contains("k")


def test_ttl_policy_requires_ttl():
    with pytest.raises(ValueError):
        SiteCache(100, policy="ttl")
    with pytest.raises(ValueError):
        make_policy("ttl", ttl=-1.0)


def test_unknown_policy_rejected():
    with pytest.raises(ValueError):
        SiteCache(100, policy="mru")


def test_pinned_entries_survive_pressure():
    cache = SiteCache(100)
    cache.put("weights", b"w", 60, pin=True)
    for i in range(10):
        cache.put(f"input{i}", i, 30)
        assert cache.contains("weights")
    stats = cache.stats()
    assert stats.pinned == 1
    assert stats.bytes_used <= 100


def test_insert_rejected_when_pinned_fill_budget():
    cache = SiteCache(100)
    cache.put("w1", 1, 50, pin=True)
    cache.put("w2", 2, 50, pin=True)
    assert not cache.put("x", 3, 10)
    assert cache.stats().rejected == 1
    assert cache.contains("w1") and cache.contains("w2")


def test_oversized_insert_rejected_outright():
    cache = SiteCache(100)
    cache.put("a", 1, 50)
    assert not cache.put("big", 2, 101)
    assert cache.contains("a")  # nothing was evicted for a doomed insert


def test_reinsert_replaces_in_place_and_keeps_pin():
    cache = SiteCache(100)
    cache.put("k", 1, 40, pin=True)
    cache.put("k", 2, 60)
    assert cache.get("k") == (True, 2)
    stats = cache.stats()
    assert stats.bytes_used == 60
    assert stats.pinned == 1  # pin sticks across re-insert


def test_max_entries_still_enforced():
    cache = SiteCache(10_000, max_entries=2)
    cache.put("a", 1, 10)
    cache.put("b", 2, 10)
    cache.put("c", 3, 10)
    assert len(cache) == 2
    assert not cache.contains("a")


def test_zero_budget_disables_cache():
    cache = SiteCache(0)
    assert not cache.enabled
    assert not cache.put("k", 1, 10)
    assert cache.get("k") == (False, None)


def test_pin_unpin_lifecycle():
    cache = SiteCache(100)
    cache.put("k", 1, 50)
    assert cache.pin("k")
    cache.put("other", 2, 60)  # must evict, but k is pinned -> rejected
    assert cache.contains("k")
    assert cache.unpin("k")
    cache.put("other", 2, 60)
    assert not cache.contains("k")
    assert not cache.pin("ghost")
    assert not cache.unpin("ghost")


def test_evictions_reconcile_with_inserts_minus_residents(metrics):
    cache = SiteCache(100, store="s", site="x")
    for i in range(20):
        cache.put(f"k{i}", i, 25)  # unique keys: every insert is new
    stats = cache.stats()
    assert stats.inserts == 20
    assert stats.inserts - stats.entries == stats.evictions
    assert metrics.counter_total("store.evictions") == stats.evictions
    # Occupancy gauge matches the stats snapshot.
    gauges = {n: g.value for n, labels, g in metrics.gauges() if n == "store.cache_bytes"}
    assert gauges["store.cache_bytes"] == stats.bytes_used


def test_explicit_evict(metrics):
    cache = SiteCache(100, store="s", site="x")
    cache.put("k", 1, 10)
    assert cache.evict("k")
    assert not cache.evict("k")
    assert cache.stats().entries == 0
