"""Tests for the three ProxyStore backends against the paper testbed."""

import pytest

from repro.exceptions import FileSystemError, PortPolicyError, StoreError
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.defaults import PaperConstants
from repro.net.kvstore import KVServer
from repro.net.topology import UniformLatency
from repro.proxystore import FileConnector, GlobusConnector, RedisConnector
from repro.serialize import Blob, serialize
from repro.transfer import TransferClient, TransferEndpoint, TransferService


# -- redis connector ----------------------------------------------------------


def test_redis_put_get_exists_evict(testbed):
    connector = RedisConnector(KVServer(testbed.theta_login), testbed.network)
    payload = serialize({"v": 1})
    with at_site(testbed.theta_login):
        connector.put("k", payload)
        assert connector.exists("k")
        assert connector.get("k").data == payload.data
        connector.evict("k")
        assert not connector.exists("k")


def test_redis_missing_key_raises(testbed):
    connector = RedisConnector(KVServer(testbed.theta_login), testbed.network)
    with at_site(testbed.theta_login):
        with pytest.raises(StoreError):
            connector.get("ghost")


def test_redis_get_timeout_waits_for_put(testbed):
    import threading

    connector = RedisConnector(KVServer(testbed.theta_login), testbed.network)
    payload = serialize("late")

    def put_later():
        get_clock().sleep(0.5)
        with at_site(testbed.theta_compute):
            connector.put("k", payload)

    thread = threading.Thread(target=put_later, daemon=True)
    thread.start()
    with at_site(testbed.theta_login):
        got = connector.get("k", timeout=30.0)
    assert got.data == payload.data
    thread.join()


def test_redis_cross_facility_needs_tunnel(testbed):
    connector = RedisConnector(KVServer(testbed.theta_login), testbed.network)
    payload = serialize("x")
    with at_site(testbed.venti):
        with pytest.raises(PortPolicyError):
            connector.put("k", payload)
    tunneled = RedisConnector(
        KVServer(testbed.theta_login, name="r2"), testbed.network, via_tunnel=True
    )
    with at_site(testbed.venti):
        tunneled.put("k", payload)
        assert tunneled.get("k").data == payload.data


# -- file connector -------------------------------------------------------------


def test_file_connector_roundtrip_within_fs_group(testbed):
    connector = FileConnector(testbed.mounts.volume("theta-lustre"))
    payload = serialize([1, 2, 3])
    with at_site(testbed.theta_login):
        connector.put("k", payload)
    with at_site(testbed.theta_compute):  # same Lustre
        assert connector.get("k").data == payload.data
        assert connector.exists("k")
        connector.evict("k")
        assert not connector.exists("k")


def test_file_connector_rejects_unmounted_site(testbed):
    connector = FileConnector(testbed.mounts.volume("theta-lustre"))
    payload = serialize("x")
    with at_site(testbed.venti):
        with pytest.raises(FileSystemError):
            connector.put("k", payload)
        with pytest.raises(FileSystemError):
            connector.get("k")


def test_file_connector_missing_key(testbed):
    connector = FileConnector(testbed.mounts.volume("theta-lustre"))
    with at_site(testbed.theta_login):
        with pytest.raises(StoreError):
            connector.get("ghost")


def test_file_connector_preserves_nominal_size(testbed):
    connector = FileConnector(testbed.mounts.volume("theta-lustre"))
    payload = serialize(Blob(5_000_000))
    with at_site(testbed.theta_login):
        connector.put("k", payload)
        fetched = connector.get("k")
    assert fetched.nominal_size == payload.nominal_size


# -- globus connector -------------------------------------------------------------


@pytest.fixture
def globus_rig(testbed):
    constants = PaperConstants(
        globus_request_latency=UniformLatency(0.05, 0.06),
        globus_transfer_base=UniformLatency(0.2, 0.3),
        globus_poll_interval=0.05,
    )
    service = TransferService(testbed.globus_cloud, testbed.network, constants).start()
    ep_theta = TransferEndpoint(
        "gep-theta", testbed.theta_login, testbed.mounts.volume("theta-lustre")
    )
    ep_venti = TransferEndpoint(
        "gep-venti", testbed.venti, testbed.mounts.volume("venti-local")
    )
    service.register_endpoint(ep_theta)
    service.register_endpoint(ep_venti)
    client = TransferClient(service, "gtest")
    connector = GlobusConnector(
        client,
        {testbed.theta_login.name: ep_theta, testbed.venti.name: ep_venti},
    )
    yield testbed, service, connector
    service.stop()


def test_globus_needs_two_endpoints(testbed):
    with pytest.raises(ValueError):
        GlobusConnector(None, {})  # type: ignore[arg-type]


def test_globus_cross_site_roundtrip(globus_rig):
    testbed, service, connector = globus_rig
    payload = serialize({"model": Blob(1_000_000)})
    with at_site(testbed.theta_login):
        connector.put("k", payload)
    with at_site(testbed.venti):
        fetched = connector.get("k", timeout=120)
    assert fetched.data == payload.data
    assert fetched.nominal_size == payload.nominal_size


def test_globus_local_get_is_immediate(globus_rig):
    testbed, service, connector = globus_rig
    payload = serialize("local")
    clock = get_clock()
    with at_site(testbed.theta_login):
        connector.put("k", payload)
        start = clock.now()
        connector.get("k", timeout=10)
        local_cost = clock.now() - start
    assert local_cost < 1.0  # no transfer wait on the producing site


def test_globus_get_waits_for_transfer(globus_rig):
    testbed, service, connector = globus_rig
    payload = serialize("x")
    clock = get_clock()
    with at_site(testbed.theta_login):
        connector.put("k", payload)
    with at_site(testbed.venti):
        start = clock.now()
        connector.get("k", timeout=120)
        remote_cost = clock.now() - start
    assert remote_cost >= 0.1  # waited on the managed transfer


def test_globus_unknown_key(globus_rig):
    testbed, service, connector = globus_rig
    with at_site(testbed.theta_login):
        with pytest.raises(StoreError):
            connector.get("ghost")


def test_globus_site_without_endpoint_rejected(globus_rig):
    testbed, service, connector = globus_rig
    with at_site(testbed.uchicago_login):
        with pytest.raises(StoreError):
            connector.put("k", serialize("x"))


def test_globus_evict_clears_everywhere(globus_rig):
    testbed, service, connector = globus_rig
    payload = serialize("x")
    with at_site(testbed.theta_login):
        connector.put("k", payload)
    with at_site(testbed.venti):
        connector.get("k", timeout=120)
    connector.evict("k")
    with at_site(testbed.theta_login):
        assert not connector.exists("k")
    with at_site(testbed.venti):
        assert not connector.exists("k")


def test_globus_transfer_task_ids_tracked(globus_rig):
    testbed, service, connector = globus_rig
    with at_site(testbed.theta_login):
        connector.put("k", serialize("x"))
    tasks = connector.transfer_task_ids("k")
    assert testbed.venti.name in tasks
