"""Tests for the proxy data plane: ahead-of-time prefetch, single-flight
resolution, and prefetch hints riding task envelopes end to end."""

import statistics
import threading

import pytest

from repro.faas.auth import AuthServer
from repro.faas.client import FaasClient
from repro.faas.cloud import SCOPE_COMPUTE, FaasCloud
from repro.faas.endpoint import FaasEndpoint
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.kvstore import KVServer
from repro.observe import MetricsRegistry, set_metrics
from repro.proxystore import (
    PrefetchHint,
    RedisConnector,
    Store,
    apply_prefetch_hints,
    hints_for_proxies,
)
from repro.proxystore.prefetch import normalize_hints
from repro.resources.worker import WorkerPool
from repro.serialize import Blob


class CountingConnector(RedisConnector):
    """RedisConnector that counts backend fetches (the wire transfers)."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.fetches = 0
        self._count_lock = threading.Lock()

    def get(self, key, timeout=None):
        with self._count_lock:
            self.fetches += 1
        return super().get(key, timeout=timeout)


@pytest.fixture
def metrics():
    registry = MetricsRegistry()
    set_metrics(registry)
    yield registry
    set_metrics(None)


@pytest.fixture
def rig(testbed):
    server = KVServer(testbed.theta_login)
    connector = CountingConnector(server, testbed.network)
    store = Store("dataplane", connector, cache_bytes=500_000_000)
    yield store, connector, testbed
    store.close()


def _put_weights(store, testbed, n=4, nbytes=2_000_000):
    with at_site(testbed.theta_login):
        return [store.put(Blob(nbytes, tag=f"weights-{i}")) for i in range(n)]


# -- prefetch ---------------------------------------------------------------------


def test_prefetch_warms_remote_site_cache(rig, metrics):
    store, connector, testbed = rig
    keys = _put_weights(store, testbed)
    handle = store.prefetch(keys, site=testbed.theta_compute, wait=True)
    assert handle.done
    assert handle.fetched == len(keys)
    assert handle.errors == 0
    stats = store.cache_stats(testbed.theta_compute)
    assert set(stats.residents) == set(keys)
    # Every subsequent first-touch resolve at the warm site is a hit.
    with at_site(testbed.theta_compute):
        for key in keys:
            store.get(key)
    assert store.metrics.cache_hits == len(keys)
    assert store.metrics.cache_misses == 0
    assert metrics.counter_total("store.prefetched") == len(keys)


def test_warm_first_resolve_p50_is_10x_faster_than_cold(testbed):
    """The acceptance criterion: under the virtual clock, the first resolve
    of hinted model weights on a warm site is >= 10x faster than the
    unhinted (seed) cold path.

    Model-weight-sized payloads (200 MB nominal, as in the paper's ~GB-scale
    inference inputs) make the cold wire cost dominate the scaled-wall-clock
    noise a cache hit still pays for its few microseconds of Python."""
    server = KVServer(testbed.theta_login)
    store = Store(
        "latency-store", RedisConnector(server, testbed.network), cache_bytes=3_000_000_000
    )
    try:
        cold_keys = _put_weights(store, testbed, n=5, nbytes=200_000_000)
        warm_keys = _put_weights(store, testbed, n=5, nbytes=200_000_000)
        store.prefetch(warm_keys, site=testbed.theta_compute, pin=True, wait=True)
        clock = get_clock()

        def first_resolve(key):
            start = clock.now()
            store.get(key)
            return clock.now() - start

        with at_site(testbed.theta_compute):
            cold_p50 = statistics.median(first_resolve(k) for k in cold_keys)
            warm_p50 = statistics.median(first_resolve(k) for k in warm_keys)
        assert cold_p50 > 0
        assert cold_p50 >= 10 * max(warm_p50, 1e-9)
    finally:
        store.close()


def test_prefetch_already_cached_keys_is_skipped(rig, metrics):
    store, connector, testbed = rig
    keys = _put_weights(store, testbed, n=2)
    store.prefetch(keys, site=testbed.theta_compute, wait=True)
    before = connector.fetches
    handle = store.prefetch(keys, site=testbed.theta_compute, pin=True, wait=True)
    assert handle.fetched == 0
    assert handle.skipped == len(keys)
    assert connector.fetches == before  # no redundant wire transfer
    # pin=True on a re-warm upgrades the resident entries.
    assert store.cache_stats(testbed.theta_compute).pinned == len(keys)


def test_prefetch_pinned_weights_survive_cache_pressure(testbed):
    server = KVServer(testbed.theta_login)
    store = Store(
        "pinned-store", RedisConnector(server, testbed.network), cache_bytes=5_000_000
    )
    try:
        with at_site(testbed.theta_login):
            weights_key = store.put(Blob(2_000_000, tag="weights"))
            input_keys = [store.put(Blob(1_500_000, tag=f"in{i}")) for i in range(6)]
        store.prefetch([weights_key], site=testbed.theta_compute, pin=True, wait=True)
        with at_site(testbed.theta_compute):
            for key in input_keys:  # one-shot inputs churn the cache
                store.get(key)
            stats = store.cache_stats()
            assert stats.bytes_used <= stats.bytes_budget
            assert weights_key in stats.residents
    finally:
        store.close()


def test_prefetch_unknown_key_is_advisory(rig, metrics):
    store, connector, testbed = rig
    handle = store.prefetch(["no-such-key"], site=testbed.theta_compute, wait=True)
    assert handle.done
    assert handle.errors == 1
    assert metrics.counter_total("store.prefetch_errors") >= 1
    # The failed warm never poisons the cold path for real keys.
    keys = _put_weights(store, testbed, n=1)
    with at_site(testbed.theta_compute):
        store.get(keys[0])


def test_apply_hints_unknown_store_never_raises(metrics):
    hint = PrefetchHint("no-such-store", ("k",))
    assert apply_prefetch_hints([hint], None, via="test") == 0
    assert metrics.counter_total("store.prefetch_errors") == 1
    assert apply_prefetch_hints((), None) == 0
    assert apply_prefetch_hints(None, None) == 0


# -- single-flight ----------------------------------------------------------------


def test_concurrent_gets_coalesce_to_exactly_one_fetch(rig):
    """The acceptance criterion: an N-worker fan-out on one key pays exactly
    one connector fetch."""
    store, connector, testbed = rig
    with at_site(testbed.theta_login):
        key = store.put(Blob(20_000_000, tag="weights"))
    n = 8
    barrier = threading.Barrier(n)
    results, errors = [], []

    def resolve():
        try:
            barrier.wait(timeout=30)
            with at_site(testbed.theta_compute):
                results.append(store.get(key))
        except Exception as exc:  # noqa: BLE001 - surfaced via assert
            errors.append(exc)

    threads = [threading.Thread(target=resolve, daemon=True) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert not errors
    assert len(results) == n
    assert connector.fetches == 1
    m = store.metrics
    assert m.cache_misses == 1  # one leader paid the wire
    assert m.cache_hits == n - 1  # everyone else coalesced or hit the replica


def test_singleflight_counts_coalesced_waiters(rig, metrics):
    store, connector, testbed = rig
    with at_site(testbed.theta_login):
        key = store.put(Blob(50_000_000, tag="big"))
    n = 6
    barrier = threading.Barrier(n)

    def resolve():
        barrier.wait(timeout=30)
        with at_site(testbed.theta_compute):
            store.get(key)

    threads = [threading.Thread(target=resolve, daemon=True) for _ in range(n)]
    for t in threads:
        t.start()
    for t in threads:
        t.join(timeout=60)
    assert connector.fetches == 1
    assert (
        store.metrics.coalesced
        + metrics.counter_total("store.singleflight_coalesced")
        >= 0
    )  # counters exist; exact split depends on arrival timing
    assert store.metrics.cache_hits + store.metrics.cache_misses == n


def test_resolve_mid_prefetch_latches_onto_the_warm(rig):
    store, connector, testbed = rig
    keys = _put_weights(store, testbed, n=1, nbytes=50_000_000)
    handle = store.prefetch(keys, site=testbed.theta_compute)  # async warm
    with at_site(testbed.theta_compute):
        store.get(keys[0])  # may latch mid-warm or hit the fresh replica
    handle.wait()
    assert connector.fetches == 1


# -- hints ------------------------------------------------------------------------


def test_hints_for_proxies_collects_store_backed_proxies(rig):
    store, connector, testbed = rig
    with at_site(testbed.theta_login):
        p1 = store.proxy(Blob(1000, tag="a"))
        p2 = store.proxy(Blob(1000, tag="b"))
    hints = hints_for_proxies([p1, "not-a-proxy", 42, p2, p1], pin=True)
    assert len(hints) == 1
    hint = hints[0]
    assert hint.store_name == "dataplane"
    assert len(hint.keys) == 2  # deduplicated
    assert hint.pin


def test_hints_for_proxies_skips_simple_factories():
    from repro.proxystore.proxy import Proxy, SimpleFactory

    proxy = Proxy(SimpleFactory([1, 2, 3]))
    assert hints_for_proxies([proxy]) == ()


def test_normalize_hints_accepts_one_or_many():
    hint = PrefetchHint("s", ("k",))
    assert normalize_hints(None) == ()
    assert normalize_hints(hint) == (hint,)
    assert normalize_hints([hint, hint]) == (hint, hint)


def test_prefetch_hint_pickles_by_value():
    import pickle

    hint = PrefetchHint("s", ("k1", "k2"), pin=True)
    clone = pickle.loads(pickle.dumps(hint))
    assert clone == hint


# -- end to end through the FaaS fabric -------------------------------------------


def _resolve_weights(weights):
    # Touching the proxy materializes it at the worker's site.
    return weights.nbytes


def test_endpoint_prefetch_warms_worker_site_end_to_end(rig, metrics):
    """A hinted FaaS submission warms the worker site's cache while the task
    is in flight; the weights cross the wire exactly once."""
    store, connector, testbed = rig
    with at_site(testbed.theta_login):
        weights = store.proxy(Blob(5_000_000, tag="weights"))
    hints = hints_for_proxies([weights], pin=True)
    assert hints

    auth = AuthServer()
    token = auth.issue_token(auth.register_identity("u", "anl"), {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 3, name="prefetch-pool")
    endpoint = FaasEndpoint(
        "theta", cloud, token, testbed.theta_login, pool, use_bus=False
    ).start()
    client = FaasClient(
        cloud, token, site=testbed.theta_login, use_bus=False
    )
    try:
        with at_site(testbed.theta_login):
            futures = [
                client.run(
                    _resolve_weights, endpoint.endpoint_id, weights,
                    _prefetch_hints=hints,
                )
                for _ in range(3)
            ]
        assert [f.result(timeout=60) for f in futures] == [5_000_000] * 3
    finally:
        client.close()
        endpoint.stop()
        pool.stop()
    assert metrics.counter_total("endpoint.prefetches") >= 1
    assert metrics.counter_total("store.prefetch_hints_applied") >= 1
    # The weights key crossed the wire to the worker site exactly once,
    # no matter how tasks and the warm interleaved.
    assert connector.fetches == 1
    assert store.cache_stats(testbed.theta_compute).pinned == 1
