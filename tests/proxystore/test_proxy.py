"""Tests for the transparent lazy proxy."""

import pickle

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import ProxyResolutionError
from repro.proxystore.proxy import (
    Factory,
    Proxy,
    SimpleFactory,
    extract,
    is_proxy,
    is_resolved,
    resolve,
    resolve_seconds,
)


class CountingFactory(Factory):
    """Resolves to a payload, counting how many times it is called."""

    def __init__(self, obj):
        self.obj = obj
        self.calls = 0

    def resolve(self):
        self.calls += 1
        return self.obj


def test_proxy_is_lazy_until_used():
    factory = CountingFactory([1, 2, 3])
    proxy = Proxy(factory)
    assert factory.calls == 0
    assert not is_resolved(proxy)
    assert len(proxy) == 3
    assert factory.calls == 1
    assert is_resolved(proxy)


def test_factory_called_exactly_once():
    factory = CountingFactory({"a": 1})
    proxy = Proxy(factory)
    _ = proxy["a"]
    _ = proxy.keys()
    _ = str(proxy)
    assert factory.calls == 1


def test_requires_callable_factory():
    with pytest.raises(TypeError):
        Proxy("not-callable")  # type: ignore[arg-type]


def test_attribute_access_forwards():
    proxy = Proxy(SimpleFactory(np.arange(5)))
    assert proxy.shape == (5,)
    assert proxy.sum() == 10


def test_attribute_set_and_delete_forward():
    class Holder:
        pass

    target = Holder()
    proxy = Proxy(SimpleFactory(target))
    proxy.value = 42
    assert target.value == 42
    del proxy.value
    assert not hasattr(target, "value")


def test_isinstance_masquerade():
    proxy = Proxy(SimpleFactory(np.zeros(3)))
    assert isinstance(proxy, np.ndarray)
    proxy2 = Proxy(SimpleFactory({"a": 1}))
    assert isinstance(proxy2, dict)


def test_type_is_not_fooled():
    proxy = Proxy(SimpleFactory([1]))
    assert type(proxy) is Proxy
    assert is_proxy(proxy)
    assert not is_proxy([1])


def test_container_protocol():
    proxy = Proxy(SimpleFactory([3, 1, 2]))
    assert len(proxy) == 3
    assert proxy[0] == 3
    assert 2 in proxy
    assert sorted(proxy) == [1, 2, 3]
    assert list(reversed(proxy)) == [2, 1, 3]
    proxy[0] = 9
    assert proxy[0] == 9
    del proxy[0]
    assert len(proxy) == 2


def test_callable_forwarding():
    proxy = Proxy(SimpleFactory(lambda x: x * 2))
    assert proxy(21) == 42


def test_arithmetic_operators():
    proxy = Proxy(SimpleFactory(10))
    assert proxy + 5 == 15
    assert 5 + proxy == 15
    assert proxy - 3 == 7
    assert 3 - proxy == -7
    assert proxy * 2 == 20
    assert proxy / 4 == 2.5
    assert proxy // 3 == 3
    assert proxy % 3 == 1
    assert proxy**2 == 100
    assert -proxy == -10
    assert abs(Proxy(SimpleFactory(-4))) == 4
    assert divmod(proxy, 3) == (3, 1)


def test_bitwise_and_shifts():
    proxy = Proxy(SimpleFactory(0b1010))
    assert proxy & 0b0110 == 0b0010
    assert proxy | 0b0101 == 0b1111
    assert proxy ^ 0b1111 == 0b0101
    assert proxy << 1 == 0b10100
    assert proxy >> 1 == 0b101
    assert ~proxy == ~0b1010


def test_comparisons():
    proxy = Proxy(SimpleFactory(5))
    assert proxy == 5
    assert proxy != 6
    assert proxy < 6
    assert proxy <= 5
    assert proxy > 4
    assert proxy >= 5


def test_numeric_conversions():
    proxy = Proxy(SimpleFactory(7))
    assert int(proxy) == 7
    assert float(proxy) == 7.0
    assert complex(proxy) == 7 + 0j
    assert list(range(10))[proxy] == 7  # __index__
    assert bool(proxy)
    assert hash(proxy) == hash(7)


def test_matmul():
    a = Proxy(SimpleFactory(np.eye(2)))
    b = np.array([[1.0], [2.0]])
    np.testing.assert_array_equal(a @ b, b)


def test_proxy_on_both_sides_of_operator():
    a = Proxy(SimpleFactory(3))
    b = Proxy(SimpleFactory(4))
    assert a + b == 7
    assert a < b


def test_str_bytes_repr():
    proxy = Proxy(SimpleFactory(12))
    assert str(proxy) == "12"
    unresolved = Proxy(SimpleFactory(12))
    assert "unresolved" in repr(unresolved)
    str(unresolved)
    assert repr(unresolved) == "12"


def test_context_manager_forwarding(tmp_path):
    path = tmp_path / "f.txt"
    path.write_text("content")
    proxy = Proxy(SimpleFactory(open(path)))
    with proxy as handle:
        assert handle.read() == "content"


def test_pickle_travels_as_factory_only():
    factory = CountingFactory("payload")
    proxy = Proxy(SimpleFactory("payload"))
    data = pickle.dumps(proxy)
    clone = pickle.loads(data)
    assert is_proxy(clone)
    assert not is_resolved(clone)
    assert clone == "payload"


def test_pickle_does_not_resolve_original():
    proxy = Proxy(SimpleFactory([1, 2]))
    pickle.dumps(proxy)
    assert not is_resolved(proxy)


def test_resolve_and_extract_helpers():
    proxy = Proxy(SimpleFactory("x"))
    resolve(proxy)
    assert is_resolved(proxy)
    assert extract(proxy) == "x"
    assert extract("plain") == "plain"
    resolve("plain")  # no-op, no raise


def test_resolve_seconds_recorded():
    proxy = Proxy(SimpleFactory(1))
    assert resolve_seconds(proxy) is None
    resolve(proxy)
    assert resolve_seconds(proxy) >= 0.0


def test_helpers_reject_non_proxies():
    with pytest.raises(TypeError):
        is_resolved(42)  # type: ignore[arg-type]
    with pytest.raises(TypeError):
        resolve_seconds(42)  # type: ignore[arg-type]


class FailingFactory(Factory):
    def resolve(self):
        raise OSError("backend gone")


def test_failing_factory_raises_resolution_error():
    proxy = Proxy(FailingFactory())
    with pytest.raises(ProxyResolutionError):
        len(proxy)


def test_dir_forwards():
    proxy = Proxy(SimpleFactory([1]))
    assert "append" in dir(proxy)


@given(st.integers(min_value=-10_000, max_value=10_000), st.integers(min_value=-100, max_value=100))
def test_proxy_int_behaves_like_int(value, other):
    proxy = Proxy(SimpleFactory(value))
    assert proxy + other == value + other
    assert proxy * other == value * other
    assert (proxy == other) == (value == other)
    assert (proxy < other) == (value < other)
    assert str(proxy) == str(value)
    assert hash(proxy) == hash(value)


@given(st.lists(st.integers(), max_size=20))
def test_proxy_list_behaves_like_list(items):
    proxy = Proxy(SimpleFactory(list(items)))
    assert len(proxy) == len(items)
    assert list(proxy) == items
    assert (3 in proxy) == (3 in items)
