"""Tests for the Store façade, registry, caching, and metrics."""

import pickle

import numpy as np
import pytest

from repro.exceptions import StoreError
from repro.net.context import at_site
from repro.net.kvstore import KVServer
from repro.proxystore import (
    RedisConnector,
    Store,
    clear_store_registry,
    get_store,
    is_proxy,
    is_resolved,
    register_store,
    unregister_store,
)
from repro.proxystore.store import StoreFactory


@pytest.fixture
def store(testbed):
    server = KVServer(testbed.theta_login)
    return Store("test-store", RedisConnector(server, testbed.network))


def test_put_get_roundtrip(store, testbed):
    with at_site(testbed.theta_login):
        key = store.put({"a": 1})
        assert store.get(key) == {"a": 1}


def test_get_unknown_key_raises(store, testbed):
    with at_site(testbed.theta_login):
        with pytest.raises(StoreError):
            store.get("ghost")


def test_exists_and_evict(store, testbed):
    with at_site(testbed.theta_login):
        key = store.put("x")
        assert store.exists(key)
        store.evict(key)
        assert not store.exists(key)


def test_proxy_roundtrip_cross_site(store, testbed):
    arr = np.arange(20)
    with at_site(testbed.theta_login):
        proxy = store.proxy(arr)
    assert is_proxy(proxy)
    assert not is_resolved(proxy)
    with at_site(testbed.theta_compute):
        np.testing.assert_array_equal(proxy + 0, arr)


def test_proxy_from_key(store, testbed):
    with at_site(testbed.theta_login):
        key = store.put([1, 2])
        proxy = store.proxy_from_key(key)
        assert proxy == [1, 2]


def test_proxy_with_evict_removes_after_resolve(store, testbed):
    with at_site(testbed.theta_login):
        proxy = store.proxy("payload", evict=True)
        key = object.__getattribute__(proxy, "__proxy_factory__").key
        assert proxy == "payload"
        assert not store.exists(key)


def test_pickled_proxy_resolves_through_registry(store, testbed):
    with at_site(testbed.theta_login):
        proxy = store.proxy({"k": 9})
    clone = pickle.loads(pickle.dumps(proxy))
    with at_site(testbed.theta_compute):
        assert clone["k"] == 9


def test_cache_hits_within_one_site(store, testbed):
    with at_site(testbed.theta_login):
        key = store.put(list(range(100)))
        store.get(key)
        store.get(key)
    assert store.metrics.cache_hits >= 1
    assert store.metrics.cache_misses >= 1


def test_cache_is_per_site(store, testbed):
    with at_site(testbed.theta_login):
        key = store.put("v")
        store.get(key)
    with at_site(testbed.theta_compute):
        store.get(key)
    # Two distinct sites -> two misses even with a warm login-node cache.
    assert store.metrics.cache_misses == 2


def test_evict_clears_site_caches(store, testbed):
    with at_site(testbed.theta_login):
        key = store.put("v")
        store.get(key)
        store.evict(key)
        with pytest.raises(StoreError):
            store.get(key)


def test_zero_cache_size_disables_caching(testbed):
    server = KVServer(testbed.theta_login)
    store = Store("nocache", RedisConnector(server, testbed.network), cache_size=0)
    with at_site(testbed.theta_login):
        key = store.put("v")
        store.get(key)
        store.get(key)
    assert store.metrics.cache_hits == 0


def test_metrics_summary(store, testbed):
    with at_site(testbed.theta_login):
        key = store.put(b"x" * 1000)
        store.get(key)
    summary = store.metrics.summary()
    assert summary["puts"] == 1
    assert summary["gets"] == 1
    assert summary["put_median_s"] > 0


# -- registry -------------------------------------------------------------------


def test_registry_lookup(store):
    assert get_store("test-store") is store


def test_duplicate_registration_rejected(store, testbed):
    server = KVServer(testbed.theta_login)
    with pytest.raises(StoreError):
        Store("test-store", RedisConnector(server, testbed.network))


def test_register_exist_ok(store):
    register_store(store, exist_ok=True)
    assert get_store("test-store") is store


def test_unregister(store):
    unregister_store("test-store")
    with pytest.raises(StoreError):
        get_store("test-store")


def test_clear_registry(store):
    clear_store_registry()
    with pytest.raises(StoreError):
        get_store("test-store")


def test_close_unregisters(store):
    store.close()
    with pytest.raises(StoreError):
        get_store("test-store")


def test_store_factory_repr():
    factory = StoreFactory("s", "k")
    assert "s" in repr(factory) and "k" in repr(factory)


def test_store_factory_unknown_store_errors():
    from repro.exceptions import ProxyResolutionError
    from repro.proxystore.proxy import Proxy

    proxy = Proxy(StoreFactory("no-such-store", "key"))
    with pytest.raises(ProxyResolutionError):
        len(proxy)
