"""Tests for the Store façade, registry, caching, and metrics."""

import pickle

import numpy as np
import pytest

from repro.exceptions import StoreError
from repro.net.context import at_site
from repro.net.kvstore import KVServer
from repro.proxystore import (
    RedisConnector,
    Store,
    clear_store_registry,
    get_store,
    is_proxy,
    is_resolved,
    register_store,
    unregister_store,
)
from repro.proxystore.store import StoreFactory


@pytest.fixture
def store(testbed):
    server = KVServer(testbed.theta_login)
    return Store("test-store", RedisConnector(server, testbed.network))


def test_put_get_roundtrip(store, testbed):
    with at_site(testbed.theta_login):
        key = store.put({"a": 1})
        assert store.get(key) == {"a": 1}


def test_get_unknown_key_raises(store, testbed):
    with at_site(testbed.theta_login):
        with pytest.raises(StoreError):
            store.get("ghost")


def test_exists_and_evict(store, testbed):
    with at_site(testbed.theta_login):
        key = store.put("x")
        assert store.exists(key)
        store.evict(key)
        assert not store.exists(key)


def test_proxy_roundtrip_cross_site(store, testbed):
    arr = np.arange(20)
    with at_site(testbed.theta_login):
        proxy = store.proxy(arr)
    assert is_proxy(proxy)
    assert not is_resolved(proxy)
    with at_site(testbed.theta_compute):
        np.testing.assert_array_equal(proxy + 0, arr)


def test_proxy_from_key(store, testbed):
    with at_site(testbed.theta_login):
        key = store.put([1, 2])
        proxy = store.proxy_from_key(key)
        assert proxy == [1, 2]


def test_proxy_with_evict_removes_after_resolve(store, testbed):
    with at_site(testbed.theta_login):
        proxy = store.proxy("payload", evict=True)
        key = object.__getattribute__(proxy, "__proxy_factory__").key
        assert proxy == "payload"
        assert not store.exists(key)


def test_pickled_proxy_resolves_through_registry(store, testbed):
    with at_site(testbed.theta_login):
        proxy = store.proxy({"k": 9})
    clone = pickle.loads(pickle.dumps(proxy))
    with at_site(testbed.theta_compute):
        assert clone["k"] == 9


def test_cache_hits_within_one_site(store, testbed):
    with at_site(testbed.theta_login):
        key = store.put(list(range(100)))
        store.get(key)
        store.get(key)
    assert store.metrics.cache_hits >= 1
    assert store.metrics.cache_misses >= 1


def test_cache_is_per_site(store, testbed):
    with at_site(testbed.theta_login):
        key = store.put("v")
        store.get(key)
    with at_site(testbed.theta_compute):
        store.get(key)
    # Two distinct sites -> two misses even with a warm login-node cache.
    assert store.metrics.cache_misses == 2


def test_evict_clears_site_caches(store, testbed):
    with at_site(testbed.theta_login):
        key = store.put("v")
        store.get(key)
        store.evict(key)
        with pytest.raises(StoreError):
            store.get(key)


def test_zero_cache_size_disables_caching(testbed):
    server = KVServer(testbed.theta_login)
    store = Store("nocache", RedisConnector(server, testbed.network), cache_size=0)
    with at_site(testbed.theta_login):
        key = store.put("v")
        store.get(key)
        store.get(key)
    assert store.metrics.cache_hits == 0


def test_metrics_summary(store, testbed):
    with at_site(testbed.theta_login):
        key = store.put(b"x" * 1000)
        store.get(key)
    summary = store.metrics.summary()
    assert summary["puts"] == 1
    assert summary["gets"] == 1
    assert summary["put_median_s"] > 0


# -- registry -------------------------------------------------------------------


def test_registry_lookup(store):
    assert get_store("test-store") is store


def test_duplicate_registration_rejected(store, testbed):
    server = KVServer(testbed.theta_login)
    with pytest.raises(StoreError):
        Store("test-store", RedisConnector(server, testbed.network))


def test_register_exist_ok(store):
    register_store(store, exist_ok=True)
    assert get_store("test-store") is store


def test_unregister(store):
    unregister_store("test-store")
    with pytest.raises(StoreError):
        get_store("test-store")


def test_clear_registry(store):
    clear_store_registry()
    with pytest.raises(StoreError):
        get_store("test-store")


def test_close_unregisters(store):
    store.close()
    with pytest.raises(StoreError):
        get_store("test-store")


def test_store_factory_repr():
    factory = StoreFactory("s", "k")
    assert "s" in repr(factory) and "k" in repr(factory)


def test_store_factory_unknown_store_errors():
    from repro.exceptions import ProxyResolutionError
    from repro.proxystore.proxy import Proxy

    proxy = Proxy(StoreFactory("no-such-store", "key"))
    with pytest.raises(ProxyResolutionError):
        len(proxy)


# -- data-plane satellites ------------------------------------------------------


def test_put_batch_key_object_length_mismatch(store, testbed):
    with at_site(testbed.theta_login):
        with pytest.raises(StoreError):
            store.put_batch([1, 2, 3], keys=["only-one"])


def test_proxy_from_key_missing_key_raises_clearly(store, testbed):
    from repro.exceptions import ProxyResolutionError

    proxy = store.proxy_from_key("never-stored")
    with at_site(testbed.theta_login):
        with pytest.raises(ProxyResolutionError):
            len(proxy)


def test_metrics_reservoirs_are_bounded():
    from repro.proxystore.store import _RESERVOIR_SIZE, StoreMetrics

    metrics = StoreMetrics()
    n = _RESERVOIR_SIZE + 250
    for i in range(n):
        metrics.record_put(0.5, 10)
        metrics.record_get(0.25, 10, cache_hit=(i % 2 == 0))
    # Totals stay exact while the sample lists stay bounded.
    assert metrics.puts == n
    assert metrics.gets == n
    assert metrics.put_bytes_total == 10 * n
    assert len(metrics.put_times) == _RESERVOIR_SIZE
    assert len(metrics.get_times) == _RESERVOIR_SIZE
    assert len(metrics.put_bytes) == _RESERVOIR_SIZE
    summary = metrics.summary()
    assert summary["puts"] == n
    assert summary["put_median_s"] == 0.5
    assert summary["get_median_s"] == 0.25
    assert summary["cache_hit_rate"] == 0.5


def test_evict_after_resolve_is_once_per_campaign(store, testbed):
    """StoreFactory(evict=True): the backend copy is dropped exactly once;
    re-resolves on a site that cached the object stay hits, and a backend
    miss on a released key explains itself."""
    with at_site(testbed.theta_login):
        proxy = store.proxy("payload", evict=True)
        key = object.__getattribute__(proxy, "__proxy_factory__").key
        assert proxy == "payload"  # first resolve releases the backend copy
        assert not store.exists(key)
        # A retry / duplicate delivery on the same site hits the cache.
        clone = store.proxy_from_key(key, evict=True)
        assert clone == "payload"
    # A site that never cached it gets the targeted explanation.
    with at_site(testbed.theta_compute):
        with pytest.raises(StoreError, match="evict-after-resolve"):
            store.get(key)


def test_release_is_idempotent(store, testbed):
    with at_site(testbed.theta_login):
        key = store.put("x")
        assert store.release(key)
        assert not store.release(key)


def test_put_records_write_side_observability(store, testbed):
    from repro.observe import MetricsRegistry, Tracer, set_metrics, set_tracer

    registry = MetricsRegistry()
    set_metrics(registry)
    tracer = Tracer()
    set_tracer(tracer)
    try:
        with at_site(testbed.theta_login):
            key = store.put(b"x" * 2000)
            store.put_batch([b"a" * 500, b"b" * 500])
            store.get(key)
        # Write side is symmetric with the read side: a proxy.put span per
        # put/put_batch alongside the existing proxy.resolve span.
        span_names = [s.name for s in tracer.spans()]
        assert span_names.count("proxy.put") == 2
        assert "proxy.resolve" in span_names
        hists = {name for name, _, _ in registry.histograms()}
        assert "store.put_s" in hists
        assert "store.get_s" in hists
        assert registry.counter_total("store.puts") == 3  # 1 put + 2 batched
        # Hit/miss counters carry a site label for per-site hit rates.
        hit_labels = [
            labels
            for name, labels, _ in registry.counters()
            if name in ("store.cache_hits", "store.cache_misses")
        ]
        assert hit_labels and all("site" in labels for labels in hit_labels)
    finally:
        set_metrics(None)
        set_tracer(None)
