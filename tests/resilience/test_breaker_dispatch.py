"""Breaker-aware dispatch: shedding, submit steering, and the admit gate.

Drives the cloud API directly (the ``tests/chaos/test_failover.py`` idiom)
so each latency sample and breaker transition happens at a known instant.
"""

from __future__ import annotations

import pytest

from repro.exceptions import LeaseExpiredError
from repro.faas import SCOPE_COMPUTE, AuthServer, FaasCloud
from repro.faas.cloud import TaskStatus
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.defaults import PaperConstants, build_paper_testbed
from repro.observe import MetricsRegistry, set_metrics
from repro.resilience import BREAKER_OPEN, EndpointHealthTracker, HealthPolicy
from repro.serialize import serialize

# Long lease TTL: these tests isolate the *gray* path, where the endpoint
# keeps heartbeating and only the breaker (never lease expiry) sheds work.
SLOW_LEASES = dict(endpoint_heartbeat_period=1.0, endpoint_lease_ttl=120.0)

#: One slow sample trips the breaker; the cool-down is long enough that it
#: stays open for the whole test unless stated otherwise.
POLICY = dict(
    latency_baseline=1.0,
    latency_threshold=2.0,
    min_samples=1,
    open_score=0.5,
    latency_alpha=1.0,
)


def _add(a, b):
    return a + b


def _rig(open_duration=600.0):
    constants = PaperConstants(**SLOW_LEASES)
    testbed = build_paper_testbed(seed=7, constants=constants)
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    health = EndpointHealthTracker(
        HealthPolicy(open_duration=open_duration, **POLICY)
    )
    cloud = FaasCloud(
        testbed.faas_cloud, testbed.network, auth, constants, health=health
    )
    ep_a = cloud.register_endpoint(token, "a", testbed.theta_login, failover_group="pair")
    ep_b = cloud.register_endpoint(token, "b", testbed.theta_login, failover_group="pair")
    cloud.heartbeat(token, ep_a)
    cloud.heartbeat(token, ep_b)
    return testbed, cloud, token, ep_a, ep_b


def _gray_out(testbed, cloud, token, ep_a, extra_tasks=2):
    """Submit 1 + ``extra_tasks`` tasks to ep_a and return a slow result for
    the first, leaving the rest queued behind a now-gray endpoint."""
    with at_site(testbed.theta_login):
        func_id = cloud.register_function(token, serialize(_add))
        task_ids = [
            cloud.submit(token, "client", func_id, ep_a, serialize(((i, i), {})))
            for i in range(1 + extra_tasks)
        ]
        dispatched = cloud.fetch_tasks(token, ep_a, 1, timeout=1.0)
        assert [d.task_id for d in dispatched] == task_ids[:1]
        get_clock().sleep(10.0)  # the dispatch -> result latency sample
        cloud.report_result(
            token, ep_a, task_ids[0], True, serialize({"success": True, "value": 0})
        )
    return func_id, task_ids


def test_healthy_peer_fetch_sheds_a_gray_endpoints_backlog():
    testbed, cloud, token, ep_a, ep_b = _rig()
    metrics = MetricsRegistry()
    set_metrics(metrics)
    func_id, task_ids = _gray_out(testbed, cloud, token, ep_a)
    # ep_b's next fetch runs the shed sweep: it opens ep_a's breaker and
    # pulls the two queued tasks over in the same call.
    with at_site(testbed.theta_login):
        refetched = cloud.fetch_tasks(token, ep_b, 10, timeout=1.0)
    assert sorted(d.task_id for d in refetched) == sorted(task_ids[1:])
    assert metrics.counter_total("resilience.breaker_opens") == 1
    assert metrics.counter_total("resilience.sheds") == 2
    for task_id in task_ids[1:]:
        record = cloud.task(task_id)
        assert record.endpoint_id == ep_b
        assert record.previous_endpoints == [ep_a]
        assert record.requeues == 1


def test_heartbeat_sweep_sheds_for_bus_idle_fleets():
    """A standby that never polls must still trigger the shed: its
    heartbeat doubles as the sweep, exactly like lease-expiry failover."""
    testbed, cloud, token, ep_a, ep_b = _rig()
    metrics = MetricsRegistry()
    set_metrics(metrics)
    _, task_ids = _gray_out(testbed, cloud, token, ep_a)
    cloud.heartbeat(token, ep_b)  # no fetch anywhere
    assert metrics.counter_total("resilience.sheds") == 2
    assert cloud.task(task_ids[1]).endpoint_id == ep_b


def test_shed_moves_in_flight_work_and_stales_the_gray_report():
    testbed, cloud, token, ep_a, ep_b = _rig()
    with at_site(testbed.theta_login):
        func_id = cloud.register_function(token, serialize(_add))
        first = cloud.submit(token, "client", func_id, ep_a, serialize(((1, 1), {})))
        straggler = cloud.submit(
            token, "client", func_id, ep_a, serialize(((2, 2), {}))
        )
        cloud.fetch_tasks(token, ep_a, 2, timeout=1.0)  # both now DISPATCHED
        get_clock().sleep(10.0)
        cloud.heartbeat(token, ep_a)
        cloud.report_result(
            token, ep_a, first, True, serialize({"success": True, "value": 2})
        )
        cloud.heartbeat(token, ep_b)  # sweep: ep_a is gray now
        record = cloud.task(straggler)
        assert record.status is TaskStatus.WAITING
        assert record.endpoint_id == ep_b
        # The gray endpoint eventually finishes the straggler anyway; its
        # report must land as a stale lease, not a second execution.
        with pytest.raises(LeaseExpiredError):
            cloud.report_result(
                token, ep_a, straggler, True, serialize({"success": True, "value": 4})
            )


def test_submit_steers_away_from_an_open_breaker():
    testbed, cloud, token, ep_a, ep_b = _rig()
    metrics = MetricsRegistry()
    set_metrics(metrics)
    func_id, _ = _gray_out(testbed, cloud, token, ep_a, extra_tasks=0)
    cloud.heartbeat(token, ep_b)  # opens ep_a's breaker via the sweep
    with at_site(testbed.theta_login):
        steered = cloud.submit(
            token, "client", func_id, ep_a, serialize(((9, 9), {}))
        )
    assert cloud.task(steered).endpoint_id == ep_b
    assert metrics.counter_total("resilience.steered") == 1


def test_open_breaker_gates_fetch_without_breaking_cadence():
    testbed, cloud, token, ep_a, ep_b = _rig()
    func_id, _ = _gray_out(testbed, cloud, token, ep_a, extra_tasks=0)
    cloud.heartbeat(token, ep_b)
    with at_site(testbed.theta_login):
        queued = cloud.submit(token, "client", func_id, ep_b, serialize(((3, 3), {})))
        # ep_a is refused work while open, even with backlog elsewhere.
        assert cloud.fetch_tasks(token, ep_a, 10, timeout=0.5) == []
        assert cloud.health.evaluate(ep_a, get_clock().now()) == BREAKER_OPEN
        refetched = cloud.fetch_tasks(token, ep_b, 10, timeout=1.0)
    assert [d.task_id for d in refetched] == [queued]


def test_half_open_probe_closes_the_breaker_through_dispatch():
    testbed, cloud, token, ep_a, ep_b = _rig(open_duration=5.0)
    metrics = MetricsRegistry()
    set_metrics(metrics)
    func_id, _ = _gray_out(testbed, cloud, token, ep_a, extra_tasks=0)
    cloud.heartbeat(token, ep_b)  # trips the breaker
    get_clock().sleep(6.0)  # past the cool-down: next evaluate is half-open
    cloud.heartbeat(token, ep_a)
    cloud.heartbeat(token, ep_b)
    with at_site(testbed.theta_login):
        # Half-open no longer steers, so the probe task queues on ep_a...
        probe = cloud.submit(token, "client", func_id, ep_a, serialize(((5, 5), {})))
        assert cloud.task(probe).endpoint_id == ep_a
        # ...and the fetch admits exactly the probe budget.
        dispatched = cloud.fetch_tasks(token, ep_a, 10, timeout=1.0)
        assert [d.task_id for d in dispatched] == [probe]
        get_clock().sleep(0.5)  # a healthy latency this time
        cloud.report_result(
            token, ep_a, probe, True, serialize({"success": True, "value": 10})
        )
    assert cloud.health.state(ep_a) == "closed"
    assert metrics.counter_total("resilience.probes") == 1
    assert metrics.counter_total("resilience.breaker_closes") == 1
