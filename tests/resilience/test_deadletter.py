"""Poison-task quarantine end to end: quorum, refusal, journal durability,
and the operator retry/drop paths."""

from __future__ import annotations

import pytest

from repro.chaos.plan import FaultInjector, FaultPlan, FaultSpec, set_injector
from repro.chaos.policy import RetryPolicy
from repro.durable import FileJournalBackend, Journal, recover_cloud
from repro.exceptions import TaskQuarantinedError
from repro.faas import (
    SCOPE_COMPUTE,
    AuthServer,
    FaasClient,
    FaasCloud,
    FaasEndpoint,
)
from repro.faas.cloud import TaskStatus
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.defaults import PaperConstants, build_paper_testbed
from repro.net.fs import FileSystem
from repro.observe import MetricsRegistry, set_metrics
from repro.resilience import PoisonPolicy, PoisonTracker
from repro.resources import WorkerPool
from repro.serialize import serialize

FAST = dict(endpoint_heartbeat_period=1.0, endpoint_lease_ttl=30.0)


def _add(a, b):
    return a + b


POISON_EVERYTHING = FaultSpec(
    "worker.poison", "poison_task", rate=1.0, occurrences=tuple(range(32))
)


def test_quarantine_reaches_quorum_across_endpoints_then_refuses(testbed):
    metrics = MetricsRegistry()
    set_metrics(metrics)
    set_injector(FaultInjector(FaultPlan.build(3, [POISON_EVERYTHING])))
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    cloud = FaasCloud(
        testbed.faas_cloud,
        testbed.network,
        auth,
        testbed.constants,
        poison=PoisonTracker(PoisonPolicy(quorum=2)),
    )
    endpoints = [
        FaasEndpoint(
            name,
            cloud,
            token,
            testbed.theta_login,
            WorkerPool(testbed.theta_compute, 2, name=f"{name}-pool"),
            failover_group="dlq-pair",
        ).start()
        for name in ("ep-a", "ep-b")
    ]
    client = FaasClient(
        cloud,
        token,
        site=testbed.theta_login,
        retry_policy=RetryPolicy(max_attempts=5, base_delay=0.1, max_delay=1.0),
    )
    try:
        with at_site(testbed.theta_login):
            future = client.run(_add, endpoints[0].endpoint_id, 1, b=2)
        with pytest.raises(TaskQuarantinedError):
            future.result(timeout=120)
        # One strike per endpoint, steered to reach quorum, then refused.
        assert metrics.counter_total("resilience.poison_steered") == 1
        assert metrics.counter_total("resilience.quarantined") == 1
        assert metrics.counter_total("resilience.quarantine_refusals") == 1
        assert metrics.counter_total("client.terminal_rejections") == 1
        entries = cloud.deadletters()
        assert len(entries) == 1
        assert set(entries[0].endpoints) == {
            endpoints[0].endpoint_id,
            endpoints[1].endpoint_id,
        }
        # The "bad deploy" is rolled back: an operator retry completes.
        set_injector(None)
        entry = entries[0]
        task_id = cloud.deadletter_retry(
            token, entry.tenant, entry.fingerprint, endpoints[1].endpoint_id
        )
        assert task_id is not None
        deadline = get_clock().now() + 60.0
        while not cloud.task(task_id).status.terminal:
            assert get_clock().now() < deadline
            get_clock().sleep(0.5)
        assert cloud.task(task_id).status is TaskStatus.SUCCESS
        assert cloud.deadletters() == []
    finally:
        client.close()
        for endpoint in endpoints:
            endpoint.stop()
        set_injector(None)


class DurableRig:
    """A journaled, poison-aware cloud that can crash and recover."""

    def __init__(self, testbed):
        self.testbed = testbed
        self.auth = AuthServer()
        identity = self.auth.register_identity("u", "anl")
        self.token = self.auth.issue_token(identity, {SCOPE_COMPUTE})
        self.wal = FileSystem("wal", op_latency=1e-4)
        self.journal = Journal(FileJournalBackend(self.wal, "cloud"))
        self.cloud = self._build()
        self.ep_a = self.cloud.register_endpoint(
            self.token, "a", testbed.theta_login, failover_group="pair"
        )
        self.ep_b = self.cloud.register_endpoint(
            self.token, "b", testbed.theta_login, failover_group="pair"
        )
        self.func_id = self.cloud.register_function(self.token, serialize(_add))

    def _build(self, bus=None, completed=None):
        return FaasCloud(
            self.testbed.faas_cloud,
            self.testbed.network,
            self.auth,
            self.testbed.constants,
            bus=bus,
            completed=completed,
            journal=self.journal,
            poison=PoisonTracker(PoisonPolicy(quorum=2)),
        )

    def crash(self):
        fresh = self._build(bus=self.cloud.bus, completed=self.cloud._completed)
        recover_cloud(fresh)
        self.cloud = fresh
        return fresh

    def fail_once(self, endpoint_id):
        """Submit the canonical args to ``endpoint_id`` and report a
        terminal failure from it; returns the record's fingerprint."""
        with at_site(self.testbed.theta_login):
            task_id = self.cloud.submit(
                self.token,
                "client",
                self.func_id,
                endpoint_id,
                serialize(((1, 2), {})),
            )
            self.cloud.heartbeat(self.token, endpoint_id)
            dispatched = self.cloud.fetch_tasks(self.token, endpoint_id, 10, 1.0)
            assert task_id in [d.task_id for d in dispatched]
            self.cloud.report_result(
                self.token,
                endpoint_id,
                task_id,
                False,
                serialize({"success": False, "error": "boom", "traceback": None}),
            )
        return self.cloud.task(task_id).fingerprint


def test_quarantine_survives_crash_recovery(testbed):
    rig = DurableRig(testbed)
    fingerprint = rig.fail_once(rig.ep_a)
    assert rig.fail_once(rig.ep_b) == fingerprint  # same content, same print
    assert rig.cloud.poison.is_quarantined("default", fingerprint)
    rig.crash()
    # The journaled quarantine outlives the process: the rebuilt shard
    # still refuses the fingerprint.
    assert rig.cloud.poison.is_quarantined("default", fingerprint)
    with at_site(testbed.theta_login):
        with pytest.raises(TaskQuarantinedError):
            rig.cloud.submit(
                rig.token, "client", rig.func_id, rig.ep_a, serialize(((1, 2), {}))
            )
    # A drop is journaled too: after another crash the entry stays gone.
    assert rig.cloud.deadletter_drop(rig.token, "default", fingerprint) is not None
    rig.crash()
    assert not rig.cloud.poison.is_quarantined("default", fingerprint)
    assert rig.cloud.deadletters() == []
    with at_site(testbed.theta_login):
        task_id = rig.cloud.submit(
            rig.token, "client", rig.func_id, rig.ep_a, serialize(((1, 2), {}))
        )
    assert rig.cloud.task(task_id).status is TaskStatus.WAITING
