"""End-to-end deadline propagation: refuse at submit, expire in queue,
skip at the endpoint, and stop client retries that cannot finish."""

from __future__ import annotations

import pytest

from repro.exceptions import DeadlineExceededError
from repro.faas import (
    SCOPE_COMPUTE,
    AuthServer,
    FaasClient,
    FaasCloud,
    FaasEndpoint,
)
from repro.chaos.policy import RetryPolicy
from repro.faas.cloud import TaskStatus
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.defaults import PaperConstants, build_paper_testbed
from repro.observe import MetricsRegistry, set_metrics
from repro.resources import WorkerPool
from repro.serialize import deserialize, serialize

FAST = dict(endpoint_heartbeat_period=1.0, endpoint_lease_ttl=30.0)


def _add(a, b):
    return a + b


def _sleepy(duration):
    get_clock().sleep(duration)
    return duration


def _fail():
    raise ValueError("remote boom")


@pytest.fixture
def cloud_rig():
    constants = PaperConstants(**FAST)
    testbed = build_paper_testbed(seed=5, constants=constants)
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, constants)
    return testbed, cloud, token


def test_submit_refuses_an_already_expired_deadline(cloud_rig):
    testbed, cloud, token = cloud_rig
    ep = cloud.register_endpoint(token, "solo", testbed.theta_login)
    with at_site(testbed.theta_login):
        func_id = cloud.register_function(token, serialize(_add))
        with pytest.raises(DeadlineExceededError):
            cloud.submit(
                token,
                "client",
                func_id,
                ep,
                serialize(((1, 2), {})),
                deadline_at=get_clock().now() - 0.1,
            )


def test_queued_task_expires_at_fetch_instead_of_shipping(cloud_rig):
    testbed, cloud, token = cloud_rig
    metrics = MetricsRegistry()
    set_metrics(metrics)
    ep = cloud.register_endpoint(token, "solo", testbed.theta_login)
    cloud.heartbeat(token, ep)
    with at_site(testbed.theta_login):
        func_id = cloud.register_function(token, serialize(_add))
        task_id = cloud.submit(
            token,
            "client",
            func_id,
            ep,
            serialize(((1, 2), {})),
            deadline_at=get_clock().now() + 1.0,
        )
        get_clock().sleep(2.0)  # the endpoint shows up too late
        assert cloud.fetch_tasks(token, ep, 10, timeout=0.0) == []
        record = cloud.task(task_id)
        assert record.status is TaskStatus.FAILED
        status, payload = cloud.get_result_payload(token, task_id)
        body = deserialize(payload)
    assert body["error"].startswith("DeadlineExceededError")
    assert metrics.counter_total("resilience.deadline_expired") == 1


def test_endpoint_skips_work_whose_deadline_lapsed_in_the_pool(testbed):
    """A 1-worker pool: the head-of-line task outlives the second task's
    deadline, so the endpoint drops it pre-execution instead of burning
    compute on a result nobody can use."""
    metrics = MetricsRegistry()
    set_metrics(metrics)
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 1, name="serial-pool")
    endpoint = FaasEndpoint(
        "serial", cloud, token, testbed.theta_login, pool
    ).start()
    client = FaasClient(cloud, token, site=testbed.theta_login)
    try:
        with at_site(testbed.theta_login):
            blocker = client.run(_sleepy, endpoint.endpoint_id, 6.0)
            doomed = client.run(_add, endpoint.endpoint_id, 1, b=2, _deadline=2.0)
        assert blocker.result(timeout=60) == 6.0
        with pytest.raises(DeadlineExceededError):
            doomed.result(timeout=60)
        assert metrics.counter_total("endpoint.deadline_skips") == 1
        assert metrics.counter_total("client.deadline_failures") == 1
    finally:
        client.close()
        endpoint.stop()


def test_client_stops_retrying_past_the_deadline(testbed):
    """The retry loop abandons once the deadline lapses: either it notices
    before resubmitting, or the cloud refuses the late resubmission — both
    are terminal, neither burns the remaining attempt budget."""
    metrics = MetricsRegistry()
    set_metrics(metrics)
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 2, name="retry-pool")
    endpoint = FaasEndpoint(
        "flaky", cloud, token, testbed.theta_login, pool
    ).start()
    client = FaasClient(
        cloud,
        token,
        site=testbed.theta_login,
        retry_policy=RetryPolicy(
            max_attempts=8, base_delay=2.0, max_delay=2.0, jitter=0.0
        ),
    )
    try:
        with at_site(testbed.theta_login):
            future = client.run(_fail, endpoint.endpoint_id, _deadline=3.0)
        with pytest.raises(DeadlineExceededError):
            future.result(timeout=120)
        abandoned = (
            metrics.counter_total("client.deadline_abandoned")
            + metrics.counter_total("client.terminal_rejections")
        )
        assert abandoned == 1
        # Far fewer executions than the attempt cap: the deadline, not the
        # budget, ended the retry storm.
        assert len(cloud.task_records()) <= 3
    finally:
        client.close()
        endpoint.stop()
