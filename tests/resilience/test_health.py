"""EndpointHealthTracker: score components and the breaker state machine."""

from __future__ import annotations

import pytest

from repro.observe import MetricsRegistry, set_metrics
from repro.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    EndpointHealthTracker,
    HealthPolicy,
)


def test_unknown_endpoint_scores_perfect():
    tracker = EndpointHealthTracker()
    assert tracker.score("nobody", now=0.0) == 1.0
    assert tracker.state("nobody") == BREAKER_CLOSED


def test_latency_factor_needs_min_samples():
    policy = HealthPolicy(latency_baseline=1.0, latency_threshold=2.0, min_samples=2)
    tracker = EndpointHealthTracker(policy)
    tracker.record_result("ep", 4.0, True, now=0.0)
    # One slow sample is not evidence yet: the latency factor stays out.
    assert tracker.score("ep", now=0.0) == 1.0
    tracker.record_result("ep", 4.0, True, now=1.0)
    # EWMA is 4.0; factor = min(1, threshold * baseline / ewma) = 2/4.
    assert tracker.score("ep", now=1.0) == pytest.approx(0.5)


def test_ewma_initializes_to_first_sample_then_smooths():
    policy = HealthPolicy(latency_alpha=0.5, latency_baseline=1.0, min_samples=1)
    tracker = EndpointHealthTracker(policy)
    tracker.record_result("ep", 2.0, True, now=0.0)
    assert tracker.snapshot()["ep"]["ewma"] == pytest.approx(2.0)
    tracker.record_result("ep", 4.0, True, now=1.0)
    assert tracker.snapshot()["ep"]["ewma"] == pytest.approx(3.0)


def test_error_factor_counts_consecutive_failures_and_resets():
    policy = HealthPolicy(error_threshold=4, latency_baseline=1.0)
    tracker = EndpointHealthTracker(policy)
    tracker.record_result("ep", 0.0, False, now=0.0)
    tracker.record_result("ep", 0.0, False, now=1.0)
    # 2/4 of the error budget burnt (zero latency keeps that factor at 1).
    assert tracker.score("ep", now=1.0) == pytest.approx(0.5)
    tracker.record_result("ep", 0.0, True, now=2.0)
    assert tracker.score("ep", now=2.0) == 1.0


def test_beat_factor_halves_per_missed_heartbeat():
    tracker = EndpointHealthTracker(HealthPolicy(heartbeat_tolerance=1.5))
    tracker.record_heartbeat("ep", now=0.0, interval=1.0)
    assert tracker.score("ep", now=1.0) == 1.0  # within tolerance
    # 4.5 periods overdue, tolerance 1.5 -> 3 missed beats -> 0.5 ** 3.
    assert tracker.score("ep", now=4.5) == pytest.approx(0.125)


def test_fleet_minimum_ewma_stands_in_for_missing_baseline():
    policy = HealthPolicy(latency_threshold=3.0, min_samples=1)
    tracker = EndpointHealthTracker(policy)
    tracker.record_result("slow", 10.0, True, now=0.0)
    # A lone endpoint is its own baseline: never slow relative to itself.
    assert tracker.score("slow", now=0.0) == 1.0
    tracker.record_result("fast", 1.0, True, now=0.0)
    # Now the fleet minimum (1.0) anchors the comparison: 3 * 1 / 10.
    assert tracker.score("slow", now=0.0) == pytest.approx(0.3)
    assert tracker.score("fast", now=0.0) == 1.0


def _tripped_tracker(**overrides):
    """A tracker with one endpoint driven past the open threshold."""
    policy = HealthPolicy(
        latency_baseline=1.0,
        latency_threshold=2.0,
        min_samples=1,
        open_score=0.5,
        open_duration=5.0,
        latency_alpha=1.0,
        **overrides,
    )
    tracker = EndpointHealthTracker(policy)
    tracker.record_result("ep", 10.0, True, now=0.0)
    assert tracker.evaluate("ep", now=1.0) == BREAKER_OPEN
    return tracker


def test_breaker_trips_only_past_min_samples():
    policy = HealthPolicy(
        latency_baseline=1.0, latency_threshold=2.0, min_samples=3, open_score=0.5
    )
    tracker = EndpointHealthTracker(policy)
    tracker.record_result("ep", 10.0, True, now=0.0)
    tracker.record_result("ep", 10.0, True, now=1.0)
    assert tracker.evaluate("ep", now=1.0) == BREAKER_CLOSED
    tracker.record_result("ep", 10.0, True, now=2.0)
    assert tracker.evaluate("ep", now=2.0) == BREAKER_OPEN


def test_breaker_open_counts_and_cools_down_to_half_open():
    metrics = MetricsRegistry()
    set_metrics(metrics)
    tracker = _tripped_tracker()
    assert tracker.evaluate("ep", now=1.0) == BREAKER_OPEN
    assert metrics.counter_total("resilience.breaker_opens") == 1
    # Still open inside the cool-down window; half-open after it.
    assert tracker.evaluate("ep", now=5.0) == BREAKER_OPEN
    assert tracker.evaluate("ep", now=6.1) == BREAKER_HALF_OPEN


def test_admit_consumes_the_half_open_probe_budget():
    metrics = MetricsRegistry()
    set_metrics(metrics)
    tracker = _tripped_tracker(half_open_probes=1)
    assert tracker.admit("ep", now=1.0) is False  # open: shed, no work
    assert tracker.admit("ep", now=6.1) is True  # half-open: one probe
    assert tracker.admit("ep", now=6.2) is False  # probe budget spent
    assert metrics.counter_total("resilience.probes") == 1


def test_successful_healthy_probe_closes_the_breaker():
    metrics = MetricsRegistry()
    set_metrics(metrics)
    tracker = _tripped_tracker()
    assert tracker.admit("ep", now=6.1) is True
    # alpha=1.0: the probe's own latency resets the EWMA, so one fast
    # result is enough to push the score back over open_score.
    tracker.record_result("ep", 0.5, True, now=6.6)
    assert tracker.state("ep") == BREAKER_CLOSED
    assert metrics.counter_total("resilience.breaker_closes") == 1
    assert tracker.admit("ep", now=7.0) is True  # closed admits freely


def test_failed_probe_reopens_the_breaker():
    tracker = _tripped_tracker()
    assert tracker.admit("ep", now=6.1) is True
    tracker.record_result("ep", 0.5, False, now=6.6)
    assert tracker.state("ep") == BREAKER_OPEN
    # The cool-down restarts from the re-open instant.
    assert tracker.evaluate("ep", now=10.0) == BREAKER_OPEN
    assert tracker.evaluate("ep", now=11.7) == BREAKER_HALF_OPEN


def test_still_slow_probe_reopens_despite_success():
    tracker = _tripped_tracker()
    assert tracker.admit("ep", now=6.1) is True
    # The probe succeeded but took as long as the gray baseline: success
    # alone does not close the breaker, health does.
    tracker.record_result("ep", 10.0, True, now=16.1)
    assert tracker.state("ep") == BREAKER_OPEN


def test_snapshot_exposes_per_endpoint_signals():
    tracker = _tripped_tracker()
    tracker.evaluate("ep", now=1.0)
    snap = tracker.snapshot()
    assert snap["ep"]["state"] == BREAKER_OPEN
    assert snap["ep"]["opens"] == 1
    assert snap["ep"]["samples"] == 1
    assert tracker.score("ep", now=1.0) <= 0.5
