"""Hedged execution end to end: first result wins, losers reconciled
exactly once under ``client.hedges{outcome=}``."""

from __future__ import annotations

import hashlib

import pytest

from repro.chaos.plan import FaultInjector, FaultPlan, FaultSpec, set_injector
from repro.chaos.policy import RetryPolicy
from repro.faas import (
    SCOPE_COMPUTE,
    AuthServer,
    FaasClient,
    FaasCloud,
    FaasEndpoint,
)
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.defaults import PaperConstants, build_paper_testbed
from repro.observe import MetricsRegistry, set_metrics
from repro.resilience import HedgePolicy
from repro.resources import WorkerPool
from repro.serialize import serialize

# A generous lease TTL: at the test time scale a 3 s nominal lease is only
# ~6 ms of wall time, so scheduler jitter could spuriously expire leases and
# fail work over mid-test.  Hedging, not lease failover, is under test here.
FAST = dict(endpoint_heartbeat_period=1.0, endpoint_lease_ttl=30.0)


def _add(a, b):
    return a + b


def _count(metrics, name, **labels):
    return sum(
        counter.value
        for n, lab, counter in metrics.counters()
        if n == name and all(lab.get(k) == v for k, v in labels.items())
    )


class HedgeRig:
    """Two-endpoint fabric with an optional gray (slow) primary."""

    def __init__(self, seed=11, specs=(), retry_policy=None):
        self.metrics = MetricsRegistry()
        set_metrics(self.metrics)
        self.injector = FaultInjector(FaultPlan.build(seed, specs))
        set_injector(self.injector)
        constants = PaperConstants(**FAST)
        self.testbed = build_paper_testbed(seed=seed, constants=constants)
        auth = AuthServer()
        identity = auth.register_identity("u", "anl")
        self.token = auth.issue_token(identity, {SCOPE_COMPUTE})
        self.cloud = FaasCloud(
            self.testbed.faas_cloud, self.testbed.network, auth, constants
        )
        self.endpoints = [
            FaasEndpoint(
                name,
                self.cloud,
                self.token,
                self.testbed.theta_login,
                WorkerPool(self.testbed.theta_compute, 2, name=f"{name}-pool"),
                failover_group="pair",
            ).start()
            for name in ("ep-a", "ep-b")
        ]
        self.client = FaasClient(
            self.cloud,
            self.token,
            site=self.testbed.theta_login,
            retry_policy=retry_policy,
        )

    def close(self):
        self.client.close()
        for endpoint in self.endpoints:
            endpoint.stop()
        set_injector(None)


def _gray(endpoint_name, delay):
    """The primary endpoint is alive but everything it runs crawls."""
    return FaultSpec(
        "endpoint.slow",
        "endpoint_slow",
        rate=1.0,
        match={"endpoint": endpoint_name},
        delay=delay,
    )


def test_hedge_wins_against_a_gray_primary():
    rig = HedgeRig(specs=[_gray("ep-a", 8.0)])
    try:
        ep_a, ep_b = (e.endpoint_id for e in rig.endpoints)
        policy = HedgePolicy(endpoints=(ep_b,), delay=2.0)
        with at_site(rig.testbed.theta_login):
            future = rig.client.run(_add, ep_a, 3, b=4, _hedge=policy)
        assert future.result(timeout=60) == 7
        assert _count(rig.metrics, "client.hedges_launched") == 1
        assert _count(rig.metrics, "client.hedges", outcome="won") == 1
        # The gray primary was already executing: too late to cancel, and
        # the primary leg never gets a hedge outcome of its own.
        assert _count(rig.metrics, "client.hedges", outcome="lost") == 0
        assert _count(rig.metrics, "client.hedges", outcome="wasted") == 0
        # The primary's eventual slow result must drop without a second
        # future resolution (give it time to land).
        get_clock().sleep(12.0)
        assert future.result() == 7
    finally:
        rig.close()


def test_hedge_loses_while_still_queued():
    rig = HedgeRig(specs=[_gray("ep-a", 4.0)])
    try:
        ep_a, ep_b = (e.endpoint_id for e in rig.endpoints)
        rig.endpoints[1].pause()  # the hedge target parks the duplicate
        policy = HedgePolicy(endpoints=(ep_b,), delay=1.0)
        with at_site(rig.testbed.theta_login):
            future = rig.client.run(_add, ep_a, 1, b=1, _hedge=policy)
        assert future.result(timeout=60) == 2
        assert _count(rig.metrics, "client.hedges_launched") == 1
        # Primary finished first; the queued duplicate was cancelled
        # before any endpoint fetched it: no duplicate execution.
        assert _count(rig.metrics, "client.hedges", outcome="lost") == 1
        assert _count(rig.metrics, "client.hedges", outcome="won") == 0
        assert _count(rig.metrics, "resilience.cancels") == 1
    finally:
        rig.close()


def test_failed_hedge_is_wasted_work():
    specs = [
        _gray("ep-a", 6.0),
        # The duplicate lands on ep-b and dies there; the primary wins.
        FaultSpec(
            "worker.execute",
            "worker_exception",
            rate=1.0,
            occurrences=tuple(range(8)),
            match={"endpoint": "ep-b"},
        ),
    ]
    rig = HedgeRig(specs=specs)
    try:
        ep_a, ep_b = (e.endpoint_id for e in rig.endpoints)
        policy = HedgePolicy(endpoints=(ep_b,), delay=1.0)
        with at_site(rig.testbed.theta_login):
            future = rig.client.run(_add, ep_a, 5, b=5, _hedge=policy)
        assert future.result(timeout=60) == 10
        assert _count(rig.metrics, "client.hedges", outcome="wasted") == 1
        assert _count(rig.metrics, "client.hedges", outcome="won") == 0
        assert _count(rig.metrics, "client.retries") == 0
    finally:
        rig.close()


def test_all_legs_failing_retries_to_the_original_endpoint():
    specs = [
        _gray("ep-a", 3.0),
        # Every first attempt dies wherever it runs; the retry succeeds.
        FaultSpec("worker.execute", "worker_exception", rate=1.0, match={"attempt": 0}),
    ]
    rig = HedgeRig(
        specs=specs,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.2, max_delay=1.0),
    )
    try:
        ep_a, ep_b = (e.endpoint_id for e in rig.endpoints)
        policy = HedgePolicy(endpoints=(ep_b,), delay=1.0)
        with at_site(rig.testbed.theta_login):
            future = rig.client.run(_add, ep_a, 6, b=7, _hedge=policy)
        assert future.result(timeout=120) == 13
        assert _count(rig.metrics, "client.retries") == 1
        # The retry returns to the originally requested endpoint.
        records = rig.cloud.task_records()
        retried = [
            r
            for r in records
            if (r.chaos_key or "").endswith("#a1") and "#h" not in (r.chaos_key or "")
        ]
        assert len(retried) == 1
        assert retried[0].endpoint_id == ep_a
    finally:
        rig.close()


def _crash_race_ledger(seed):
    """Satellite: gray primary + hedge endpoint crashing mid-flight.

    The hedge leg dies with its endpoint, so the gray primary's slow result
    is the one that resolves the future; every other delivery (the orphaned
    hedge, lease reaps) is reconciled as duplicate/stale and the future
    resolves exactly once.  Returns a digest of the chaos ledger + outcome
    for determinism checks.
    """
    rig = HedgeRig(seed=seed, specs=[_gray("ep-a", 10.0)])
    try:
        ep_a, ep_b = (e.endpoint_id for e in rig.endpoints)
        policy = HedgePolicy(endpoints=(ep_b,), delay=1.0)
        with at_site(rig.testbed.theta_login):
            future = rig.client.run(_add, ep_a, 2, b=3, _hedge=policy)
        get_clock().sleep(2.0)  # hedge launched and dispatched on ep-b
        rig.endpoints[1].simulate_crash()
        value = future.result(timeout=120)
        assert value == 5
        # Exactly-once: a settled future stays settled through the late
        # deliveries (gray primary result, failover copy, lease reaps).
        get_clock().sleep(15.0)
        assert future.result() == 5
        assert _count(rig.metrics, "client.hedges_launched") == 1
        fires = sorted(
            (fire.hook, fire.mode, fire.key) for fire in rig.injector.fires()
        )
        ledger = repr((fires, value))
        return hashlib.sha256(ledger.encode()).hexdigest()[:16]
    finally:
        rig.close()


def test_hedge_crash_race_resolves_once_and_deterministically():
    assert _crash_race_ledger(23) == _crash_race_ledger(23)
