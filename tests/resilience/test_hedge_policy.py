"""HedgePolicy and LatencyReservoir: delay derivation and target choice."""

from __future__ import annotations

import pytest

from repro.resilience import HedgePolicy, LatencyReservoir


def test_policy_validation():
    with pytest.raises(ValueError):
        HedgePolicy(endpoints=())
    with pytest.raises(ValueError):
        HedgePolicy(endpoints=("ep",), delay=-1.0)
    with pytest.raises(ValueError):
        HedgePolicy(endpoints=("ep",), quantile=1.0)
    with pytest.raises(ValueError):
        HedgePolicy(endpoints=("ep",), multiplier=0.0)
    with pytest.raises(ValueError):
        HedgePolicy(endpoints=("ep",), max_hedges=0)


def test_fixed_delay_ignores_the_reservoir():
    policy = HedgePolicy(endpoints=("ep",), delay=2.5)
    assert policy.hedge_delay(LatencyReservoir()) == 2.5


def test_derived_delay_waits_for_min_samples():
    policy = HedgePolicy(
        endpoints=("ep",), quantile=0.5, multiplier=1.5, min_samples=2
    )
    reservoir = LatencyReservoir()
    reservoir.add(1.0)
    assert policy.hedge_delay(reservoir) is None  # too shallow to estimate
    reservoir.add(2.0)
    # Nearest-rank median of [1.0, 2.0] is 2.0; times the multiplier.
    assert policy.hedge_delay(reservoir) == pytest.approx(3.0)


def test_hedge_target_skips_excluded_endpoints_in_order():
    policy = HedgePolicy(endpoints=("a", "b", "c"))
    assert policy.hedge_target(exclude=set()) == "a"
    assert policy.hedge_target(exclude={"a"}) == "b"
    assert policy.hedge_target(exclude={"a", "b", "c"}) is None


def test_reservoir_nearest_rank_quantile():
    reservoir = LatencyReservoir()
    for value in range(1, 11):
        reservoir.add(float(value))
    assert reservoir.quantile(0.95) == 10.0
    assert reservoir.quantile(0.5) == 6.0
    with pytest.raises(ValueError):
        reservoir.quantile(0.0)


def test_reservoir_ring_evicts_oldest_samples():
    reservoir = LatencyReservoir(capacity=3)
    for value in (1.0, 2.0, 3.0, 4.0):
        reservoir.add(value)
    assert len(reservoir) == 3
    # 1.0 was overwritten: the surviving window is {2, 3, 4}.
    assert reservoir.quantile(0.5) == 3.0


def test_reservoir_clamps_negative_latencies():
    reservoir = LatencyReservoir()
    reservoir.add(-5.0)
    assert reservoir.quantile(0.5) == 0.0
