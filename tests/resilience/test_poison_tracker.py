"""PoisonTracker: strike quorum, dead-letter entries, and restore/remove."""

from __future__ import annotations

from repro.resilience import DeadLetterEntry, PoisonPolicy, PoisonTracker

FP = "func-1:abcd1234"


def _strike(tracker, endpoint, tenant="t", fingerprint=FP, now=1.0):
    return tracker.note_failure(
        tenant,
        fingerprint,
        endpoint,
        func_id="func-1",
        task_id="task-0",
        args_locator="loc-0",
        client_id="client-0",
        error=f"boom on {endpoint}",
        now=now,
    )


def test_same_endpoint_never_reaches_quorum_alone():
    tracker = PoisonTracker(PoisonPolicy(quorum=2))
    assert _strike(tracker, "ep-a") is None
    assert _strike(tracker, "ep-a") is None  # same voter, still one strike
    assert tracker.strikes(FP) == ("ep-a",)
    assert not tracker.is_quarantined("t", FP)


def test_distinct_endpoint_quorum_quarantines():
    tracker = PoisonTracker(PoisonPolicy(quorum=2))
    assert _strike(tracker, "ep-a") is None
    entry = _strike(tracker, "ep-b", now=7.0)
    assert entry is not None
    assert entry.endpoints == ("ep-a", "ep-b")
    assert entry.quarantined_at == 7.0
    assert tracker.is_quarantined("t", FP)
    # Strikes collapse into the entry; no double-quarantine on re-vote.
    assert tracker.strikes(FP) == ()
    assert _strike(tracker, "ep-c") is None


def test_success_clears_the_strike_record():
    tracker = PoisonTracker(PoisonPolicy(quorum=2))
    _strike(tracker, "ep-a")
    tracker.note_success(FP)
    # The slate is clean: a later failure starts the count over.
    assert _strike(tracker, "ep-b") is None
    assert tracker.strikes(FP) == ("ep-b",)


def test_untried_endpoint_steers_toward_quorum():
    tracker = PoisonTracker(PoisonPolicy(quorum=3))
    _strike(tracker, "ep-a")
    assert tracker.untried_endpoint(FP, ["ep-a", "ep-b"]) == "ep-b"
    _strike(tracker, "ep-b")
    assert tracker.untried_endpoint(FP, ["ep-a", "ep-b"]) is None


def test_entries_filter_by_tenant():
    tracker = PoisonTracker(PoisonPolicy(quorum=1))
    _strike(tracker, "ep-a", tenant="acme", fingerprint="f:1")
    _strike(tracker, "ep-a", tenant="zeta", fingerprint="f:2")
    assert {e.tenant for e in tracker.entries()} == {"acme", "zeta"}
    assert [e.fingerprint for e in tracker.entries("acme")] == ["f:1"]


def test_remove_and_restore_round_trip():
    tracker = PoisonTracker(PoisonPolicy(quorum=1))
    _strike(tracker, "ep-a")
    entry = tracker.remove("t", FP)
    assert entry is not None
    assert tracker.remove("t", FP) is None  # idempotent
    assert not tracker.is_quarantined("t", FP)
    tracker.restore(entry)
    assert tracker.is_quarantined("t", FP)
    assert tracker.entry("t", FP) == entry


def test_entry_record_round_trip():
    tracker = PoisonTracker(PoisonPolicy(quorum=1))
    entry = _strike(tracker, "ep-a", now=3.5)
    rebuilt = DeadLetterEntry.from_record(entry.to_record())
    assert rebuilt == entry


def test_max_entries_refuses_further_quarantines():
    tracker = PoisonTracker(PoisonPolicy(quorum=1, max_entries=1))
    assert _strike(tracker, "ep-a", fingerprint="f:1") is not None
    # The tenant's queue is full: the second fingerprint keeps failing
    # through the retry path instead of being silently evicted.
    assert _strike(tracker, "ep-a", fingerprint="f:2") is None
    assert not tracker.is_quarantined("t", "f:2")
    # Other tenants have their own budget.
    assert _strike(tracker, "ep-a", tenant="other", fingerprint="f:3") is not None
