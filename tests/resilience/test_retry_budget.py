"""Regressions for the two wait-budget defects fixed alongside resilience:

* ``RetryPolicy.max_elapsed`` is re-checked *after* the backoff sleep, so a
  long backoff can never launch a retry past the budget it was granted
  under;
* ``FaasCloud.fetch_tasks`` / ``next_completed`` long-polls are deadline
  loops clamped to the remaining budget — spurious condition-variable
  wakeups (other endpoints' enqueues) neither cut the wait short nor
  stretch it past the timeout.
"""

from __future__ import annotations

import threading

import pytest

from repro.chaos.policy import RetryPolicy
from repro.exceptions import RetryExhaustedError
from repro.faas import (
    SCOPE_COMPUTE,
    AuthServer,
    FaasClient,
    FaasCloud,
    FaasEndpoint,
)
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.defaults import PaperConstants, build_paper_testbed
from repro.resources import WorkerPool
from repro.serialize import serialize


def _add(a, b):
    return a + b


def _fail():
    raise ValueError("remote boom")


def test_retries_left_checks_both_caps():
    policy = RetryPolicy(max_attempts=3, max_elapsed=5.0)
    assert policy.retries_left(0, elapsed=0.0)
    assert not policy.retries_left(2, elapsed=0.0)  # attempt cap
    assert not policy.retries_left(0, elapsed=5.0)  # budget cap
    assert RetryPolicy(max_attempts=3).retries_left(0, elapsed=1e9)  # no budget


def test_backoff_sleep_cannot_blow_the_elapsed_budget(testbed):
    """A 10 s backoff against a 5 s budget: the client must notice *after*
    sleeping that the budget lapsed and give up without resubmitting."""
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, testbed.constants)
    pool = WorkerPool(testbed.theta_compute, 2, name="budget-pool")
    endpoint = FaasEndpoint(
        "budget", cloud, token, testbed.theta_login, pool
    ).start()
    client = FaasClient(
        cloud,
        token,
        site=testbed.theta_login,
        retry_policy=RetryPolicy(
            max_attempts=10,
            base_delay=10.0,
            max_delay=10.0,
            jitter=0.0,
            max_elapsed=5.0,
        ),
    )
    try:
        with at_site(testbed.theta_login):
            future = client.run(_fail, endpoint.endpoint_id)
        with pytest.raises(RetryExhaustedError) as excinfo:
            future.result(timeout=120)
        assert excinfo.value.attempts == 1
        # The regression: pre-fix, the budget was only checked before the
        # sleep, so the task ran a second (budget-busting) attempt.
        assert len(cloud.task_records()) == 1
    finally:
        client.close()
        endpoint.stop()


@pytest.fixture
def noisy_cloud():
    """A cloud with a background submitter hammering a *different*
    endpoint's queue, so the shared condition variable fires constantly."""
    constants = PaperConstants(endpoint_heartbeat_period=1.0, endpoint_lease_ttl=30.0)
    testbed = build_paper_testbed(seed=13, constants=constants)
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    cloud = FaasCloud(testbed.faas_cloud, testbed.network, auth, constants)
    quiet = cloud.register_endpoint(token, "quiet", testbed.theta_login)
    busy = cloud.register_endpoint(token, "busy", testbed.theta_login)
    with at_site(testbed.theta_login):
        func_id = cloud.register_function(token, serialize(_add))
    stop = threading.Event()

    def hammer():
        with at_site(testbed.theta_login):
            for i in range(40):
                if stop.is_set():
                    return
                cloud.submit(token, "noise", func_id, busy, serialize(((i, i), {})))
                get_clock().sleep(0.25)

    thread = threading.Thread(target=hammer, daemon=True)
    thread.start()
    yield testbed, cloud, token, quiet
    stop.set()
    thread.join(timeout=10)


def test_fetch_long_poll_holds_its_deadline_under_spurious_wakeups(noisy_cloud):
    testbed, cloud, token, quiet = noisy_cloud
    clock = get_clock()
    started = clock.now()
    with at_site(testbed.theta_login):
        fetched = cloud.fetch_tasks(token, quiet, 10, timeout=3.0)
    elapsed = clock.now() - started
    assert fetched == []  # the noise belongs to the other endpoint
    # Every wakeup re-enters the wait with the *remaining* budget: the
    # poll neither returns early nor overshoots by a full interval.
    assert 3.0 <= elapsed < 4.5


def test_next_completed_holds_its_deadline_under_spurious_wakeups(noisy_cloud):
    testbed, cloud, token, quiet = noisy_cloud
    clock = get_clock()
    started = clock.now()
    assert cloud.next_completed("lonely-client", timeout=2.0) is None
    elapsed = clock.now() - started
    assert 2.0 <= elapsed < 3.5
