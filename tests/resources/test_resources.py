"""Tests for the batch scheduler and worker pools."""

import threading

import pytest

from repro.exceptions import SchedulerError
from repro.net.clock import get_clock
from repro.net.topology import FixedLatency, Site
from repro.resources import BatchScheduler, JobState, WorkerPool


@pytest.fixture
def site():
    return Site("hpc", trust_group="hpc")


@pytest.fixture
def scheduler(site):
    return BatchScheduler(site, total_nodes=4, queue_delay=FixedLatency(0.1))


# -- scheduler -------------------------------------------------------------------


def test_submit_starts_job(scheduler):
    job = scheduler.submit(2)
    assert job.state is JobState.RUNNING
    assert scheduler.free_nodes == 2
    scheduler.release(job)
    assert scheduler.free_nodes == 4
    assert job.state is JobState.COMPLETED


def test_queue_delay_charged(scheduler):
    clock = get_clock()
    start = clock.now()
    job = scheduler.submit(1)
    assert clock.now() - start >= 0.1
    scheduler.release(job)


def test_oversized_request_rejected(scheduler):
    with pytest.raises(SchedulerError):
        scheduler.submit(5)
    with pytest.raises(SchedulerError):
        scheduler.submit(0)


def test_invalid_scheduler():
    with pytest.raises(SchedulerError):
        BatchScheduler(Site("x"), total_nodes=0)


def test_blocks_until_nodes_free(scheduler):
    first = scheduler.submit(4)
    released = []

    def release_later():
        get_clock().sleep(1.0)
        scheduler.release(first)
        released.append(True)

    thread = threading.Thread(target=release_later, daemon=True)
    thread.start()
    second = scheduler.submit(2, timeout=60.0)
    assert released  # we actually waited for the release
    assert second.state is JobState.RUNNING
    scheduler.release(second)
    thread.join()


def test_submit_timeout(scheduler):
    first = scheduler.submit(4)
    with pytest.raises(SchedulerError):
        scheduler.submit(1, timeout=0.3)
    scheduler.release(first)


def test_double_release_is_noop(scheduler):
    job = scheduler.submit(1)
    scheduler.release(job)
    scheduler.release(job)
    assert scheduler.free_nodes == 4


def test_job_lookup(scheduler):
    job = scheduler.submit(1)
    assert scheduler.job(job.job_id) is job
    with pytest.raises(SchedulerError):
        scheduler.job("ghost")
    scheduler.release(job)


# -- worker pool ----------------------------------------------------------------------


def test_pool_executes_work(site):
    pool = WorkerPool(site, 2, name="p1").start()
    done = threading.Event()
    results = []
    try:
        for i in range(4):
            pool.submit(lambda i=i: results.append(i))
        pool.submit(done.set)
        assert done.wait(5)
        assert sorted(results) == [0, 1, 2, 3]
        assert pool.tasks_completed >= 4
    finally:
        pool.stop()


def test_pool_requires_positive_workers(site):
    with pytest.raises(ValueError):
        WorkerPool(site, 0)


def test_pool_rejects_submit_when_stopped(site):
    pool = WorkerPool(site, 1, name="p2")
    with pytest.raises(RuntimeError):
        pool.submit(lambda: None)


def test_pool_survives_closure_exceptions(site):
    pool = WorkerPool(site, 1, name="p3").start()
    done = threading.Event()
    try:
        pool.submit(lambda: 1 / 0)
        pool.submit(done.set)
        assert done.wait(5)  # the lane survived the exception
    finally:
        pool.stop()


def test_pool_records_idle_gaps(site):
    pool = WorkerPool(site, 1, name="p4").start()
    clock = get_clock()
    first = threading.Event()
    second = threading.Event()
    try:
        pool.submit(first.set)
        assert first.wait(5)
        clock.sleep(2.0)  # leave the worker idle
        pool.submit(second.set)
        assert second.wait(5)
    finally:
        pool.stop()
    assert pool.idle_gaps and max(pool.idle_gaps) >= 1.0


def test_pool_active_counts(site):
    pool = WorkerPool(site, 2, name="p5").start()
    release = threading.Event()
    started = threading.Event()

    def blocker():
        started.set()
        release.wait(5)

    try:
        pool.submit(blocker)
        assert started.wait(5)
        assert pool.active_count == 1
        assert pool.idle_count == 1
        release.set()
    finally:
        pool.stop()


def test_pool_with_scheduler_provisions_nodes(site):
    scheduler = BatchScheduler(site, total_nodes=4, queue_delay=FixedLatency(0.05))
    pool = WorkerPool(site, 3, name="p6", scheduler=scheduler)
    pool.start()
    try:
        assert scheduler.free_nodes == 1
    finally:
        pool.stop()
    assert scheduler.free_nodes == 4


def test_pool_context_manager(site):
    with WorkerPool(site, 1, name="p7") as pool:
        done = threading.Event()
        pool.submit(done.set)
        assert done.wait(5)


def test_pool_queue_depth(site):
    pool = WorkerPool(site, 1, name="p8").start()
    release = threading.Event()
    try:
        pool.submit(lambda: release.wait(5))
        get_clock().sleep(0.5)
        pool.submit(lambda: None)
        pool.submit(lambda: None)
        assert pool.queue_depth >= 1
        release.set()
    finally:
        pool.stop()
