"""Tests for the molecule library, oracles, and dataset builders."""

import numpy as np
import pytest

from repro.net.clock import get_clock
from repro.serialize import Blob
from repro.sim.chemistry import MoleculeLibrary, TightBindingSimulator
from repro.sim.datasets import (
    DftSimulator,
    hydronet_like_dataset,
    moses_like_library,
)
from repro.sim.water import make_water_cluster, reference_potential


# -- molecule library ------------------------------------------------------------


def test_library_shapes_and_determinism():
    a = MoleculeLibrary(100, n_features=16, seed=5)
    b = MoleculeLibrary(100, n_features=16, seed=5)
    np.testing.assert_array_equal(a.fingerprints(), b.fingerprints())
    np.testing.assert_array_equal(a.true_ips(), b.true_ips())
    assert a.fingerprints().shape == (100, 16)
    assert len(a) == 100


def test_library_validation():
    with pytest.raises(ValueError):
        MoleculeLibrary(0)


def test_library_indexed_access():
    lib = MoleculeLibrary(50, seed=1)
    subset = lib.fingerprints([3, 7])
    np.testing.assert_array_equal(subset[0], lib.fingerprints()[3])
    assert lib.true_ip(3) == pytest.approx(lib.true_ips([3])[0])


def test_library_ip_distribution():
    lib = MoleculeLibrary(2000, seed=2, ip_mean=11.0, ip_std=1.6)
    ips = lib.true_ips()
    assert abs(float(np.mean(ips)) - 11.0) < 0.2
    assert abs(float(np.std(ips)) - 1.6) < 0.2


def test_threshold_and_count_consistent():
    lib = MoleculeLibrary(1000, seed=3)
    threshold = lib.top_quantile_threshold(0.05)
    count = lib.count_above(threshold)
    assert 30 <= count <= 70  # ~5% of 1000
    with pytest.raises(ValueError):
        lib.top_quantile_threshold(0.0)


def test_ip_surface_is_learnable():
    """A model trained on fingerprints must beat random guessing — the
    property active learning depends on."""
    from repro.ml.mpnn import MpnnSurrogate

    lib = MoleculeLibrary(600, n_features=16, seed=4)
    x, y = lib.fingerprints(), lib.true_ips()
    model = MpnnSurrogate(16, hidden=(32,), seed=0)
    model.train(x[:400], y[:400], epochs=60)
    pred = model.predict(x[400:])
    assert np.corrcoef(pred, y[400:])[0, 1] > 0.5


# -- tight-binding oracle ------------------------------------------------------------


def test_simulator_returns_noisy_truth_and_sleeps():
    lib = MoleculeLibrary(50, seed=0)
    sim = TightBindingSimulator(lib, duration_mean=2.0, method_noise=0.01, seed=1)
    clock = get_clock()
    start = clock.now()
    record = sim.compute_ip(7)
    took = clock.now() - start
    assert took >= 1.0  # slept roughly the simulated duration
    assert record.molecule_index == 7
    assert abs(record.ip - lib.true_ip(7)) < 0.1
    assert isinstance(record.artifacts, Blob)
    assert record.artifacts.nbytes == 1_000_000


def test_simulator_deterministic_per_molecule():
    lib = MoleculeLibrary(50, seed=0)
    sim1 = TightBindingSimulator(lib, duration_mean=0.1, seed=1)
    sim2 = TightBindingSimulator(lib, duration_mean=0.1, seed=1)
    assert sim1.compute_ip(3).ip == sim2.compute_ip(3).ip


def test_moses_like_library_factory():
    lib = moses_like_library(200, seed=9)
    assert len(lib) == 200


# -- water datasets ---------------------------------------------------------------------


def test_hydronet_dataset_size_and_diversity():
    structures, energies = hydronet_like_dataset(60, n_waters=2, seed=1)
    assert len(structures) == 60
    assert energies.shape == (60,)
    assert float(np.std(energies)) > 0.05  # diverse enough to learn from


def test_hydronet_uses_ttm_labels_by_default():
    structures, energies = hydronet_like_dataset(20, n_waters=2, seed=2)
    reference = reference_potential()
    ref_energies = np.array([reference.energy(s) for s in structures])
    assert abs(float(np.mean(energies - ref_energies))) > 0.1


def test_dft_simulator_matches_reference_with_noise():
    sim = DftSimulator(duration_mean=0.5, energy_noise=0.001, force_noise=0.0005, seed=3)
    structure = make_water_cluster(2, seed=0)
    clock = get_clock()
    start = clock.now()
    record = sim.compute(structure)
    assert clock.now() - start >= 0.2
    reference = reference_potential()
    true_e, true_f = reference.energy_and_forces(structure)
    assert record.energy == pytest.approx(true_e, abs=0.02)
    np.testing.assert_allclose(record.forces, true_f, atol=0.02)
    assert record.artifacts.nbytes == 20_000


def test_dft_simulator_distinct_calls_differ_in_duration():
    sim = DftSimulator(duration_mean=0.2, duration_jitter=0.5, seed=1)
    structure = make_water_cluster(1, seed=0)
    a = sim.compute(structure).wall_time
    b = sim.compute(structure).wall_time
    assert a != b
