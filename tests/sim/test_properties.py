"""Property-based invariants for the physics and data substrates."""

import threading

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.thinker import ResourceCounter
from repro.ml.schnet import RbfBasis, featurize
from repro.net.kvstore import KVServer
from repro.net.topology import Site
from repro.sim.water import (
    make_water_cluster,
    reference_potential,
    ttm_potential,
)

seeds = st.integers(min_value=0, max_value=10_000)


@given(seeds)
@settings(max_examples=15)
def test_energy_translation_invariant(seed):
    potential = reference_potential()
    s = make_water_cluster(2, seed=seed)
    e1 = potential.energy(s)
    shifted = s.copy()
    shifted.positions = shifted.positions + np.array([3.0, -7.0, 11.0])
    assert abs(potential.energy(shifted) - e1) < 1e-9


@given(seeds, st.floats(min_value=-3.0, max_value=3.0))
@settings(max_examples=15)
def test_energy_rotation_invariant(seed, theta):
    potential = reference_potential()
    s = make_water_cluster(2, seed=seed)
    e1 = potential.energy(s)
    rot = np.array(
        [
            [np.cos(theta), -np.sin(theta), 0.0],
            [np.sin(theta), np.cos(theta), 0.0],
            [0.0, 0.0, 1.0],
        ]
    )
    rotated = s.copy()
    rotated.positions = rotated.positions @ rot.T
    assert abs(potential.energy(rotated) - e1) < 1e-8


@given(seeds)
@settings(max_examples=10)
def test_forces_sum_to_zero_property(seed):
    """Newton's third law for arbitrary clusters, both parameterizations."""
    s = make_water_cluster(3, seed=seed)
    for potential in (reference_potential(), ttm_potential()):
        _, forces = potential.energy_and_forces(s)
        np.testing.assert_allclose(forces.sum(axis=0), 0.0, atol=1e-8)


@given(seeds)
@settings(max_examples=10)
def test_features_finite_and_nonnegative(seed):
    basis = RbfBasis(n_centers=6)
    s = make_water_cluster(2, seed=seed)
    features = featurize(s.positions, s.types, basis)
    assert np.all(np.isfinite(features))
    assert np.all(features >= 0.0)  # sums of Gaussians times a cutoff in [0,1]


@given(st.lists(st.integers(min_value=0, max_value=1_000_000), min_size=1, max_size=50))
@settings(max_examples=20)
def test_kvstore_concurrent_producers_preserve_multiset(items):
    """Values pushed by concurrent producers all come out exactly once."""
    server = KVServer(Site("solo"))
    chunks = [items[i::4] for i in range(4)]

    def produce(chunk):
        for item in chunk:
            server.rpush("q", item)

    threads = [threading.Thread(target=produce, args=(c,)) for c in chunks]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    popped = []
    while True:
        value = server.lpop("q")
        if value is None:
            break
        popped.append(value)
    assert sorted(popped) == sorted(items)


def test_resource_counter_conservation_under_contention():
    """Total slots are conserved through concurrent acquire/release storms."""
    counter = ResourceCounter(8, ["a", "b"])
    counter.allocate("a", 5)
    counter.allocate("b", 3)
    errors = []

    def worker(pool):
        try:
            for _ in range(200):
                if counter.acquire(pool, 1, timeout=1.0):
                    counter.release(pool, 1)
        except Exception as exc:  # pragma: no cover - failure reporting
            errors.append(exc)

    threads = [
        threading.Thread(target=worker, args=(pool,))
        for pool in ("a", "b")
        for _ in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert not errors
    assert counter.available("a") == 5
    assert counter.available("b") == 3
    assert counter.unallocated == 0
