"""Tests for the water-cluster physics, MD, and dataset builders."""

import numpy as np
import pytest

from repro.net.clock import get_clock
from repro.sim.water import (
    ATOM_C,
    ATOM_H,
    ATOM_O,
    Structure,
    make_test_set,
    make_water_cluster,
    maxwell_boltzmann_velocities,
    reference_potential,
    run_md,
    ttm_potential,
)


# -- structures ---------------------------------------------------------------


def test_structure_validation():
    with pytest.raises(ValueError):
        Structure(np.zeros((2, 2)), np.zeros(2, dtype=int))
    with pytest.raises(ValueError):
        Structure(np.zeros((2, 3)), np.zeros(3, dtype=int))


def test_structure_copy_is_deep():
    s = make_water_cluster(1, seed=0)
    c = s.copy()
    c.positions += 1.0
    assert not np.allclose(s.positions, c.positions)


def test_cluster_composition_with_methane():
    s = make_water_cluster(3, seed=0, with_methane=True)
    assert s.n_atoms == 5 + 3 * 3
    assert int(np.sum(s.types == ATOM_C)) == 1
    assert int(np.sum(s.types == ATOM_O)) == 3
    assert int(np.sum(s.types == ATOM_H)) == 4 + 6
    # 4 C-H bonds + 2 O-H per water.
    assert len(s.bonds) == 4 + 6


def test_cluster_without_methane():
    s = make_water_cluster(2, seed=1, with_methane=False)
    assert s.n_atoms == 6
    assert int(np.sum(s.types == ATOM_C)) == 0


def test_cluster_molecules_not_overlapping():
    s = make_water_cluster(6, seed=3)
    heavy = s.positions[s.types != ATOM_H]
    for i in range(len(heavy)):
        for j in range(i + 1, len(heavy)):
            assert np.linalg.norm(heavy[i] - heavy[j]) > 1.5


def test_cluster_bond_lengths_near_equilibrium():
    s = make_water_cluster(2, seed=4)
    for i, j in s.bonds:
        r = np.linalg.norm(s.positions[i] - s.positions[j])
        assert 0.9 < r < 1.2


def test_masses_by_type():
    s = make_water_cluster(1, seed=0)
    assert s.masses[s.types == ATOM_O][0] == pytest.approx(16.0)
    assert s.masses[s.types == ATOM_H][0] == pytest.approx(1.0)


# -- potentials -------------------------------------------------------------------


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_forces_are_negative_gradient(seed):
    potential = reference_potential()
    s = make_water_cluster(2, seed=seed)
    _, forces = potential.energy_and_forces(s)
    eps = 1e-6
    for atom in (0, 1, s.n_atoms - 1):
        for dim in range(3):
            sp, sm = s.copy(), s.copy()
            sp.positions[atom, dim] += eps
            sm.positions[atom, dim] -= eps
            numeric = -(potential.energy(sp) - potential.energy(sm)) / (2 * eps)
            assert forces[atom, dim] == pytest.approx(numeric, rel=1e-5, abs=1e-7)


def test_ttm_forces_also_consistent():
    potential = ttm_potential()
    s = make_water_cluster(1, seed=5)
    _, forces = potential.energy_and_forces(s)
    eps = 1e-6
    sp, sm = s.copy(), s.copy()
    sp.positions[0, 0] += eps
    sm.positions[0, 0] -= eps
    numeric = -(potential.energy(sp) - potential.energy(sm)) / (2 * eps)
    assert forces[0, 0] == pytest.approx(numeric, rel=1e-5, abs=1e-7)


def test_energy_finite_even_for_overlaps():
    potential = reference_potential()
    s = make_water_cluster(2, seed=0)
    s.positions[3] = s.positions[0] + 0.01  # near-collision
    energy, forces = potential.energy_and_forces(s)
    assert np.isfinite(energy)
    assert np.all(np.isfinite(forces))


def test_ttm_is_systematically_biased():
    reference, ttm = reference_potential(), ttm_potential()
    diffs = []
    for seed in range(10):
        s = make_water_cluster(3, seed=seed)
        diffs.append(ttm.energy(s) - reference.energy(s))
    diffs = np.array(diffs)
    assert abs(diffs.mean()) > 0.1  # clear bias for fine-tuning to remove
    assert diffs.std() > 0.01  # geometry-dependent, so it is learnable


def test_net_force_is_zero():
    """Newton's third law: internal forces sum to ~0."""
    potential = reference_potential()
    s = make_water_cluster(3, seed=7)
    _, forces = potential.energy_and_forces(s)
    np.testing.assert_allclose(forces.sum(axis=0), 0.0, atol=1e-9)


# -- velocities / MD --------------------------------------------------------------------


def test_maxwell_boltzmann_zero_momentum():
    s = make_water_cluster(3, seed=0)
    v = maxwell_boltzmann_velocities(s, 300.0, seed=1)
    np.testing.assert_allclose(v.mean(axis=0), 0.0, atol=1e-12)


def test_maxwell_boltzmann_scales_with_temperature():
    s = make_water_cluster(3, seed=0)
    cold = maxwell_boltzmann_velocities(s, 10.0, seed=1)
    hot = maxwell_boltzmann_velocities(s, 1000.0, seed=1)
    assert np.std(hot) > np.std(cold) * 3


def test_md_returns_requested_frames():
    s = make_water_cluster(1, seed=0)
    potential = reference_potential()
    frames = run_md(s, potential.forces, 8, sample_every=2, seed=0)
    assert len(frames) == 4
    assert all(isinstance(f, type(s)) for f in frames)


def test_md_moves_atoms_but_stays_finite():
    s = make_water_cluster(2, seed=1)
    potential = reference_potential()
    frames = run_md(s, potential.forces, 20, temperature=300.0, seed=2)
    assert not np.allclose(frames[-1].positions, s.positions)
    assert np.all(np.isfinite(frames[-1].positions))
    # Cluster should not have exploded across hundreds of angstroms.
    assert np.abs(frames[-1].positions).max() < 100.0


def test_md_does_not_mutate_input():
    s = make_water_cluster(1, seed=3)
    original = s.positions.copy()
    run_md(s, reference_potential().forces, 5, seed=0)
    np.testing.assert_array_equal(s.positions, original)


def test_md_rejects_zero_steps():
    with pytest.raises(ValueError):
        run_md(make_water_cluster(1), reference_potential().forces, 0)


def test_md_deterministic_given_seed():
    s = make_water_cluster(1, seed=4)
    potential = reference_potential()
    f1 = run_md(s, potential.forces, 6, seed=9)
    f2 = run_md(s, potential.forces, 6, seed=9)
    np.testing.assert_allclose(f1[-1].positions, f2[-1].positions)


# -- test set -------------------------------------------------------------------------------


def test_make_test_set_contents():
    test_set = make_test_set(n_trajectories=2, temperatures=(100.0, 300.0), n_steps=8, n_waters=2)
    assert len(test_set) > 0
    for structure, energy, forces in test_set:
        assert np.isfinite(energy)
        assert forces.shape == structure.positions.shape
