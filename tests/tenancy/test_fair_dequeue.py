"""Weighted-round-robin dequeue: starvation bounds under a flooding tenant."""

import pytest

from repro.faas import SCOPE_COMPUTE, AuthServer
from repro.faas.cloud import FaasCloud
from repro.net.context import at_site
from repro.serialize import serialize
from repro.tenancy import TenantRegistry, tenant_scope


def _noop():
    return None


@pytest.fixture
def rig(testbed):
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    registry = TenantRegistry()
    registry.create("hot", weight=1)
    registry.create("quiet", weight=3)
    cloud = FaasCloud(
        testbed.faas_cloud, testbed.network, auth, testbed.constants,
        usage=registry,
    )
    token = auth.issue_token(
        identity, {SCOPE_COMPUTE, tenant_scope("hot"), tenant_scope("quiet")}
    )
    with at_site(testbed.theta_login):
        endpoint_id = cloud.register_endpoint(token, "theta", testbed.theta_login)
        funcs = {
            tenant: cloud.register_function(
                token, serialize(_noop), tenant=tenant
            )
            for tenant in ("hot", "quiet")
        }
    return cloud, token, endpoint_id, funcs


def _flood(cloud, token, endpoint_id, funcs, counts):
    with at_site(cloud.site):
        for tenant, count in counts.items():
            for i in range(count):
                cloud.submit(
                    token,
                    "client-x",
                    funcs[tenant],
                    endpoint_id,
                    serialize(((), {})),
                    tenant=tenant,
                    chaos_key=f"{tenant}-{i}",
                )


def test_hot_tenant_bounded_to_its_weight_share_per_window(rig):
    cloud, token, endpoint_id, funcs = rig
    # Both backlogged: hot (weight 1) floods, quiet (weight 3) keeps a
    # steady backlog.  Every drain window must hand hot at most ~1/4 of
    # the deliveries — the WRR starvation bound.
    _flood(cloud, token, endpoint_id, funcs, {"hot": 40, "quiet": 40})
    windows = []
    while True:
        batch = cloud.fetch_tasks(token, endpoint_id, 8, 0.0)
        if not batch:
            break
        windows.append([dispatch.tenant for dispatch in batch])
    assert sum(len(w) for w in windows) == 80
    # The bound applies while quiet is still backlogged, i.e. every window
    # before the one in which quiet finally drains.
    last_quiet = max(i for i, w in enumerate(windows) if "quiet" in w)
    for window in windows[:last_quiet]:
        share = window.count("hot") / len(window)
        assert share <= 1 / 4 + 1 / len(window), window
    # Interleaving, not head-of-line: quiet work appears in the very first
    # window even though hot submitted first.
    assert "quiet" in windows[0]


def test_lone_backlog_gets_the_full_feed(rig):
    cloud, token, endpoint_id, funcs = rig
    # No competition: WRR must not idle capacity on absent tenants.
    _flood(cloud, token, endpoint_id, funcs, {"hot": 12})
    batch = cloud.fetch_tasks(token, endpoint_id, 12, 0.0)
    assert [dispatch.tenant for dispatch in batch] == ["hot"] * 12


def test_rotation_resumes_after_quiet_drains(rig):
    cloud, token, endpoint_id, funcs = rig
    _flood(cloud, token, endpoint_id, funcs, {"hot": 20, "quiet": 4})
    seen = []
    while True:
        batch = cloud.fetch_tasks(token, endpoint_id, 4, 0.0)
        if not batch:
            break
        seen.extend(dispatch.tenant for dispatch in batch)
    assert seen.count("hot") == 20
    assert seen.count("quiet") == 4
    # Once quiet drains, hot runs uncontested: the tail is pure hot.
    tail = seen[-(20 - 4):]
    assert set(tail) == {"hot"}
