"""Consistent-hashing properties the sharded control plane depends on."""

import pytest

from repro.exceptions import WorkflowError
from repro.tenancy import HashRing, partition_key


def test_empty_ring_rejects_lookups():
    with pytest.raises(WorkflowError):
        HashRing().node_for("anything")


def test_duplicate_node_rejected():
    ring = HashRing(["s0"])
    with pytest.raises(WorkflowError):
        ring.add_node("s0")


def test_remove_unknown_node_rejected():
    with pytest.raises(WorkflowError):
        HashRing(["s0"]).remove_node("s9")


def test_placement_is_deterministic_across_instances():
    keys = [partition_key(f"tenant-{i % 3}", f"fn-{i}") for i in range(200)]
    ring_a = HashRing(["s0", "s1", "s2"])
    ring_b = HashRing(["s2", "s0", "s1"])  # insertion order must not matter
    assert [ring_a.node_for(k) for k in keys] == [ring_b.node_for(k) for k in keys]


def test_every_node_owns_a_reasonable_share():
    ring = HashRing(["s0", "s1", "s2", "s3"])
    keys = [partition_key("t", f"fn-{i}") for i in range(2000)]
    counts = {node: 0 for node in ring.nodes}
    for key in keys:
        counts[ring.node_for(key)] += 1
    # With 64 virtual replicas the shares are rough but nobody should own
    # less than a third or more than double the fair share.
    for node, count in counts.items():
        assert 2000 / 4 / 3 < count < 2000 / 4 * 2, (node, counts)


def test_adding_a_shard_moves_about_one_over_n_keys():
    n = 4
    keys = [partition_key(f"tenant-{i % 5}", f"fn-{i}") for i in range(3000)]
    ring = HashRing([f"s{i}" for i in range(n)])
    before = {key: ring.node_for(key) for key in keys}
    ring.add_node(f"s{n}")
    moved = sum(1 for key in keys if ring.node_for(key) != before[key])
    fair = len(keys) / (n + 1)
    # Consistent hashing: ~1/(N+1) of keys move, never a global reshuffle.
    assert fair * 0.5 < moved < fair * 2.0, moved
    # And every moved key lands on the new shard, nothing shuffles between
    # the existing shards.
    for key in keys:
        owner = ring.node_for(key)
        assert owner == before[key] or owner == f"s{n}"


def test_removing_the_added_shard_restores_placement():
    keys = [partition_key("t", f"fn-{i}") for i in range(500)]
    ring = HashRing(["s0", "s1", "s2"])
    before = {key: ring.node_for(key) for key in keys}
    ring.add_node("s3")
    ring.remove_node("s3")
    assert {key: ring.node_for(key) for key in keys} == before
