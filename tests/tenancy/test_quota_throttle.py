"""Quota exhaustion: retryable throttles, client backoff, eventual success."""

import pytest

from repro.chaos.policy import RetryPolicy
from repro.exceptions import TenantQuotaExceededError, ThrottledError
from repro.faas import SCOPE_COMPUTE, AuthServer, FaasClient, FaasEndpoint
from repro.net.context import at_site
from repro.observe import MetricsRegistry, set_metrics
from repro.resources import WorkerPool
from repro.serialize import serialize
from repro.tenancy import CloudRouter, TenantQuota, tenant_scope


def _double(x):
    return 2 * x


@pytest.fixture
def metrics():
    registry = MetricsRegistry()
    set_metrics(registry)
    yield registry
    set_metrics(None)


def _make_router(testbed, auth, **tenant_kwargs):
    router = CloudRouter(
        testbed.faas_cloud, testbed.network, auth, testbed.constants, n_shards=2
    )
    router.create_tenant("alice", **tenant_kwargs)
    return router


def test_rate_limited_client_backs_off_and_every_task_succeeds(testbed, metrics):
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    # Tight bucket: one token per 5 nominal seconds, far below the storm's
    # submit rate, so throttles are guaranteed; the client absorbs them.
    router = _make_router(testbed, auth, rate=0.2, burst=1.0)
    token = auth.issue_token(identity, {SCOPE_COMPUTE, tenant_scope("alice")})
    pool = WorkerPool(testbed.theta_compute, 4, name="throttle-pool")
    endpoint = FaasEndpoint(
        "theta", router, auth.issue_token(identity, {SCOPE_COMPUTE}),
        testbed.theta_login, pool,
    ).start()
    client = FaasClient(router, token, site=testbed.theta_login, tenant="alice")
    try:
        with at_site(testbed.theta_login):
            futures = [
                client.run(_double, endpoint.endpoint_id, i) for i in range(10)
            ]
        assert [f.result(timeout=120) for f in futures] == [2 * i for i in range(10)]
    finally:
        client.close()
        endpoint.stop()
    usage = router.registry.get("alice").usage
    assert usage.throttled >= 1, "the storm never hit the rate limit"
    assert metrics.counter_total("client.throttled") >= 1
    assert metrics.counter_total("cloud.throttled") >= 1
    # Throttle recovery must not engage the task-retry machinery.
    assert metrics.counter_total("client.retries") == 0
    assert metrics.counter_total("client.submit_retries") == 0


def test_in_flight_quota_exhaustion_is_retryable(testbed, metrics):
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    router = _make_router(testbed, auth, quota=TenantQuota(max_in_flight=2))
    token = auth.issue_token(identity, {SCOPE_COMPUTE, tenant_scope("alice")})
    pool = WorkerPool(testbed.theta_compute, 2, name="quota-pool")
    endpoint = FaasEndpoint(
        "theta", router, auth.issue_token(identity, {SCOPE_COMPUTE}),
        testbed.theta_login, pool,
    ).start()
    client = FaasClient(router, token, site=testbed.theta_login, tenant="alice")
    try:
        with at_site(testbed.theta_login):
            # 8 tasks through a 2-in-flight quota: submits must block-and-
            # retry behind completions, and all of them succeed.
            futures = [
                client.run(_double, endpoint.endpoint_id, i) for i in range(8)
            ]
        assert [f.result(timeout=120) for f in futures] == [2 * i for i in range(8)]
    finally:
        client.close()
        endpoint.stop()
    assert router.registry.get("alice").usage.throttled >= 1
    assert router.registry.get("alice").usage.in_flight == 0


def test_throttle_budget_exhaustion_surfaces_the_throttle(testbed):
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    router = _make_router(testbed, auth, quota=TenantQuota(max_in_flight=0))
    token = auth.issue_token(identity, {SCOPE_COMPUTE, tenant_scope("alice")})
    pool = WorkerPool(testbed.theta_compute, 1, name="zero-pool")
    endpoint = FaasEndpoint(
        "theta", router, auth.issue_token(identity, {SCOPE_COMPUTE}),
        testbed.theta_login, pool,
    ).start()
    # A zero quota never opens up: once the (small) throttle budget is
    # spent the ThrottledError reaches the caller.
    client = FaasClient(
        router,
        token,
        site=testbed.theta_login,
        tenant="alice",
        throttle_policy=RetryPolicy(max_attempts=2, base_delay=0.05, max_delay=0.1),
    )
    try:
        with at_site(testbed.theta_login):
            with pytest.raises(ThrottledError):
                client.run(_double, endpoint.endpoint_id, 1)
    finally:
        client.close()
        endpoint.stop()


def test_function_quota_exhaustion_raises_immediately(testbed):
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    router = _make_router(testbed, auth, quota=TenantQuota(max_functions=1))
    token = auth.issue_token(identity, {SCOPE_COMPUTE, tenant_scope("alice")})
    with at_site(testbed.theta_login):
        router.register_function(token, serialize(_double), tenant="alice")
        with pytest.raises(TenantQuotaExceededError):
            router.register_function(token, serialize(_double), tenant="alice")
