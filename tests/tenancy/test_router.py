"""CloudRouter end-to-end: routing, isolation, shared delivery fabric."""

import pytest

from repro.exceptions import (
    AuthorizationError,
    InvalidFunctionError,
    InvalidTenantError,
    WorkflowError,
)
from repro.faas import SCOPE_COMPUTE, AuthServer, FaasClient, FaasEndpoint
from repro.net.context import at_site
from repro.resources import WorkerPool
from repro.serialize import serialize
from repro.tenancy import CloudRouter, tenant_scope


def _add(a, b):
    return a + b


def _mul(a, b):
    return a * b


@pytest.fixture
def rig(testbed):
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    router = CloudRouter(
        testbed.faas_cloud, testbed.network, auth, testbed.constants, n_shards=3
    )
    router.create_tenant("alice", weight=2)
    router.create_tenant("bob")
    endpoint_token = auth.issue_token(identity, {SCOPE_COMPUTE})
    token_alice = auth.issue_token(identity, {SCOPE_COMPUTE, tenant_scope("alice")})
    token_bob = auth.issue_token(identity, {SCOPE_COMPUTE, tenant_scope("bob")})
    pool = WorkerPool(testbed.theta_compute, 3, name="router-pool")
    endpoint = FaasEndpoint(
        "theta", router, endpoint_token, testbed.theta_login, pool
    ).start()
    alice = FaasClient(router, token_alice, site=testbed.theta_login, tenant="alice")
    bob = FaasClient(router, token_bob, site=testbed.theta_login, tenant="bob")
    yield testbed, auth, identity, router, endpoint, alice, bob
    alice.close()
    bob.close()
    endpoint.stop()


def test_two_tenants_share_one_endpoint(rig):
    testbed, _auth, _identity, router, endpoint, alice, bob = rig
    with at_site(testbed.theta_login):
        fa = [alice.run(_add, endpoint.endpoint_id, i, 1) for i in range(5)]
        fb = [bob.run(_mul, endpoint.endpoint_id, i, 2) for i in range(5)]
    assert [f.result(timeout=60) for f in fa] == [i + 1 for i in range(5)]
    assert [f.result(timeout=60) for f in fb] == [i * 2 for i in range(5)]
    records = router.task_records()
    assert len(records) == 10
    assert all(record.status.terminal for record in records)
    assert {record.tenant for record in records} == {"alice", "bob"}


def test_task_ids_route_back_to_their_shard(rig):
    testbed, _auth, _identity, router, endpoint, alice, _bob = rig
    with at_site(testbed.theta_login):
        futures = [alice.run(_add, endpoint.endpoint_id, i, i) for i in range(4)]
        for f in futures:
            f.result(timeout=60)
    for record in router.task_records():
        shard_id = record.task_id.split("-")[1]
        assert shard_id in router.shard_ids
        assert router.task(record.task_id).task_id == record.task_id
        # Locators carry the owning shard's prefix and resolve via the
        # routed store facade.
        assert record.args_locator.startswith(f"{shard_id}/")


def test_functions_are_partitioned_across_shards(rig):
    testbed, auth, identity, router, _endpoint, _alice, _bob = rig
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    with at_site(testbed.theta_login):
        func_ids = [
            router.register_function(token, serialize(_add), name=f"fn{i}")
            for i in range(24)
        ]
    owners = {
        router._shard_for_partition("default", func_id) for func_id in func_ids
    }
    assert len(owners) > 1  # 24 functions over 3 shards: never all on one


def test_tenant_cannot_call_another_tenants_function(rig):
    testbed, _auth, _identity, router, endpoint, alice, bob = rig
    with at_site(testbed.theta_login):
        func_id = alice.register_function(_add)
        with pytest.raises(WorkflowError, match="unknown function"):
            router.submit(
                bob.token,
                bob.client_id,
                func_id,
                endpoint.endpoint_id,
                serialize(((1, 2), {})),
                tenant="bob",
            )


def test_token_without_tenant_scope_is_rejected(rig):
    testbed, auth, identity, router, _endpoint, _alice, _bob = rig
    bare = auth.issue_token(identity, {SCOPE_COMPUTE})
    with at_site(testbed.theta_login):
        with pytest.raises(AuthorizationError):
            router.register_function(bare, serialize(_add), tenant="alice")


def test_unknown_tenant_and_bad_names_rejected_at_the_router(rig):
    testbed, _auth, _identity, router, endpoint, alice, _bob = rig
    with at_site(testbed.theta_login):
        with pytest.raises(InvalidTenantError):
            router.register_function(alice.token, serialize(_add), tenant="NOT VALID")
        with pytest.raises(InvalidFunctionError):
            router.register_function(
                alice.token, serialize(_add), name="not a function name"
            )
        func_id = alice.register_function(_add)
        with pytest.raises(InvalidTenantError):
            router.submit(
                alice.token,
                alice.client_id,
                func_id,
                endpoint.endpoint_id,
                serialize(((1, 2), {})),
                tenant="Bad Tenant",
            )


def test_routed_store_is_read_only_and_validates_prefixes(rig):
    _testbed, _auth, _identity, router, _endpoint, _alice, _bob = rig
    with pytest.raises(WorkflowError):
        router.store.write(serialize({"x": 1}))
    with pytest.raises(WorkflowError):
        router.store.read("redis:no-shard-prefix")


def test_add_shard_migrates_a_fraction_of_functions(rig):
    testbed, auth, identity, router, endpoint, alice, _bob = rig
    token = auth.issue_token(identity, {SCOPE_COMPUTE})
    with at_site(testbed.theta_login):
        func_ids = [
            router.register_function(token, serialize(_add), name=f"g{i}")
            for i in range(30)
        ]
        before = {
            func_id: router._shard_for_partition("default", func_id)
            for func_id in func_ids
        }
        new_shard = router.add_shard()
        assert new_shard in router.shard_ids
        moved = [
            func_id
            for func_id in func_ids
            if router._shard_for_partition("default", func_id) != before[func_id]
        ]
        # Some but not all registrations follow the ring to the new shard,
        # and every one of them still resolves there.
        assert 0 < len(moved) < len(func_ids)
        for func_id in moved:
            assert router.get_function(token, func_id) is not None
        # The grown cloud still executes work end to end (new shard adopted
        # the existing endpoint).
        future = alice.run(_add, endpoint.endpoint_id, 20, 22)
        assert future.result(timeout=60) == 42


def test_function_name_derived_and_sanitized(rig):
    testbed, _auth, _identity, _router, _endpoint, alice, _bob = rig
    with at_site(testbed.theta_login):
        named = alice.register_function(_add)
        assert named.startswith("fn-_add-")
        # A callable whose __name__ fails validation (lambda-style)
        # registers anonymously instead of erroring.
        weird = _mul
        weird.__name__ = "<lambda>"
        try:
            anonymous = alice.register_function(weird)
        finally:
            weird.__name__ = "_mul"
        assert anonymous.startswith("fn-") and "<" not in anonymous
