"""Campaign cell and router semantics for the shard_crash fault mode.

A shard *crash* is harsher than an outage: the shard's entire in-memory
state — task ledger, queues, payload store — is discarded, and a
replacement is rebuilt from the write-ahead journal.  The cell must keep
the standard invariants (no lost tasks, counters reconciling with the
fault ledger, bit-identical digests across reruns), and a result written
before the crash must still be fetchable afterwards.
"""

import pytest

from repro.chaos.campaign import FAULT_MODES, run_cell
from repro.durable import FileJournalBackend, Journal
from repro.exceptions import WorkflowError
from repro.faas import SCOPE_COMPUTE, AuthServer, FaasClient, FaasEndpoint
from repro.net.context import at_site
from repro.net.fs import FileSystem
from repro.resources import WorkerPool
from repro.serialize import deserialize
from repro.tenancy import CloudRouter, tenant_scope


def _add(a, b):
    return a + b


def test_shard_crash_is_in_the_fault_matrix():
    assert "shard_crash" in FAULT_MODES


def test_shard_crash_no_lost_tasks_and_deterministic_ledger():
    first = run_cell("shard_crash", "faas-file", seed=0)
    rerun = run_cell("shard_crash", "faas-file", seed=0)
    assert first.passed, first.failures
    assert rerun.passed, rerun.failures
    assert first.fires >= 1
    # Every crash destroyed a shard's state and a journal replay rebuilt it.
    assert first.counters["cloud.shard_crashes"] == first.fires
    assert first.counters["durable.recoveries"] == first.fires
    # The crash surfaces as a throttle the client absorbs; the task-retry
    # machinery never engages, so no task runs twice.
    assert first.counters["client.retries"] == 0
    assert first.digest == rerun.digest


@pytest.fixture
def rig(testbed):
    auth = AuthServer()
    identity = auth.register_identity("u", "anl")
    wal = FileSystem("shard-wal", op_latency=1e-3)
    router = CloudRouter(
        testbed.faas_cloud,
        testbed.network,
        auth,
        testbed.constants,
        n_shards=2,
        journal_factory=lambda shard_id: Journal(
            FileJournalBackend(wal, shard_id), name=shard_id
        ),
    )
    router.create_tenant("alice")
    endpoint_token = auth.issue_token(identity, {SCOPE_COMPUTE})
    token = auth.issue_token(identity, {SCOPE_COMPUTE, tenant_scope("alice")})
    pool = WorkerPool(testbed.theta_compute, 2, name="crash-pool")
    endpoint = FaasEndpoint(
        "theta", router, endpoint_token, testbed.theta_login, pool
    ).start()
    client = FaasClient(router, token, site=testbed.theta_login, tenant="alice")
    yield testbed, router, endpoint, client, token
    client.close()
    endpoint.stop()


def test_results_survive_a_state_destroying_shard_crash(rig):
    """Regression: a result uplinked before the crash stays fetchable after
    the shard's in-memory state (payload store included) is destroyed."""
    testbed, router, endpoint, client, token = rig
    with at_site(testbed.theta_login):
        futures = [client.run(_add, endpoint.endpoint_id, i, 10) for i in range(6)]
    assert [f.result(timeout=60) for f in futures] == [i + 10 for i in range(6)]

    for shard_id in router.shard_ids:
        report = router.crash_shard(shard_id)
        assert report.replayed > 0
        assert report.released == 0  # nothing was in flight

    records = router.task_records()
    assert len(records) == 6  # zero lost tasks
    assert all(record.status.terminal for record in records)
    for record in records:
        _status, payload = router.get_result_payload(token, record.task_id)
        assert deserialize(payload)["success"]

    # The rebuilt shards keep admitting and completing new work.
    with at_site(testbed.theta_login):
        future = client.run(_add, endpoint.endpoint_id, 40, 2)
    assert future.result(timeout=60) == 42


def test_crash_without_a_journal_is_unrecoverable(testbed):
    auth = AuthServer()
    router = CloudRouter(
        testbed.faas_cloud, testbed.network, auth, testbed.constants, n_shards=2
    )
    with pytest.raises(WorkflowError):
        router.crash_shard(next(iter(router.shard_ids)))
