"""Campaign cell for the shard_outage fault mode.

A shard restarting at admission is a *control-plane* fault: the submit is
rejected with a retryable throttle, the client backs off, and once the
outage window lapses the shard re-rings any acked doorbells.  The cell must
satisfy the standard campaign invariants — no lost tasks, counters
reconciling with the injected-fault ledger — and produce bit-identical
ledger digests across reruns of the same seed.
"""

from repro.chaos.campaign import FAULT_MODES, run_cell


def test_shard_outage_is_in_the_fault_matrix():
    assert "shard_outage" in FAULT_MODES


def test_shard_outage_no_lost_tasks_and_deterministic_ledger():
    first = run_cell("shard_outage", "faas-file", seed=0)
    rerun = run_cell("shard_outage", "faas-file", seed=0)
    assert first.passed, first.failures
    assert rerun.passed, rerun.failures
    assert first.fires >= 1
    # Every outage surfaced as a throttle the client absorbed: the shard
    # restart never engages the task-retry machinery and no task is lost.
    assert first.counters["cloud.shard_outages"] == first.fires
    assert first.counters["client.throttled"] >= first.fires
    assert first.counters["client.retries"] == 0
    assert first.digest == rerun.digest


def test_shard_outage_digest_varies_with_seed():
    a = run_cell("shard_outage", "faas-file", seed=0)
    b = run_cell("shard_outage", "faas-file", seed=7)
    assert a.passed and b.passed
    # Different seeds schedule different drop points; the ledger reflects
    # the actual fault history, not a constant.
    assert a.digest != b.digest
