"""Tenant validation, quotas, token bucket, and the usage registry."""

import pytest

from repro.exceptions import (
    InvalidFunctionError,
    InvalidTenantError,
    TenantQuotaExceededError,
)
from repro.net.clock import get_clock
from repro.tenancy import (
    DEFAULT_TENANT,
    TenantQuota,
    TenantRegistry,
    TokenBucket,
    render_tenant_table,
    tenant_scope,
    validate_function_name,
    validate_tenant_name,
)


# -- name validation ----------------------------------------------------------
@pytest.mark.parametrize("name", ["a", "moldesign", "team-3.sub_x", "0x9"])
def test_valid_tenant_names(name):
    assert validate_tenant_name(name) == name


@pytest.mark.parametrize(
    "name", ["", "-lead", "UPPER", "has space", "a" * 65, None, 7, "x/y"]
)
def test_invalid_tenant_names(name):
    with pytest.raises(InvalidTenantError):
        validate_tenant_name(name)


@pytest.mark.parametrize("name", ["f", "_private", "pkg.mod.fn", "Fn2"])
def test_valid_function_names(name):
    assert validate_function_name(name) == name


@pytest.mark.parametrize(
    "name", ["", "2fast", "<lambda>", "has-dash", "a" * 129, None]
)
def test_invalid_function_names(name):
    with pytest.raises(InvalidFunctionError):
        validate_function_name(name)


def test_tenant_scope_embeds_name():
    assert "alice" in tenant_scope("alice")
    assert tenant_scope("a") != tenant_scope("b")


# -- token bucket -------------------------------------------------------------
def test_token_bucket_burst_then_throttle():
    bucket = TokenBucket(rate=10.0, burst=3.0)
    assert bucket.acquire() == 0.0
    assert bucket.acquire() == 0.0
    assert bucket.acquire() == 0.0
    wait = bucket.acquire()
    assert wait > 0.0  # empty: the hint is the nominal refill time
    assert wait <= 1.0 / 10.0 + 1e-9


def test_token_bucket_refills_with_the_clock():
    bucket = TokenBucket(rate=10.0, burst=1.0)
    assert bucket.acquire() == 0.0
    assert bucket.acquire() > 0.0
    get_clock().sleep(0.2)  # 2 tokens worth, capped at burst=1
    assert bucket.acquire() == 0.0
    assert bucket.acquire() > 0.0


def test_token_bucket_rejects_bad_parameters():
    with pytest.raises(InvalidTenantError):
        TokenBucket(rate=0.0, burst=1.0)
    with pytest.raises(InvalidTenantError):
        TokenBucket(rate=1.0, burst=-1.0)


# -- registry -----------------------------------------------------------------
def test_registry_always_has_default_tenant():
    registry = TenantRegistry()
    assert DEFAULT_TENANT in registry.names()
    # Unlimited: many submits admit without throttling.
    for _ in range(100):
        registry.admit_submit(DEFAULT_TENANT, 10)


def test_duplicate_and_invalid_creates_rejected():
    registry = TenantRegistry()
    registry.create("alice")
    with pytest.raises(InvalidTenantError):
        registry.create("alice")
    with pytest.raises(InvalidTenantError):
        registry.create("BAD NAME")
    with pytest.raises(InvalidTenantError):
        registry.create("bob", weight=0)
    with pytest.raises(InvalidTenantError):
        registry.create("carol", burst=5.0)  # burst requires a rate


def test_unknown_tenant_is_a_targeted_error():
    registry = TenantRegistry()
    with pytest.raises(InvalidTenantError):
        registry.admit_submit("ghost", 0)


def test_in_flight_quota_blocks_then_releases():
    registry = TenantRegistry()
    registry.create("alice", quota=TenantQuota(max_in_flight=2))
    registry.admit_submit("alice", 100)
    registry.admit_submit("alice", 100)
    with pytest.raises(TenantQuotaExceededError):
        registry.admit_submit("alice", 100)
    registry.task_dispatched("alice", 100)
    registry.task_finished("alice")  # headroom returns at terminal
    registry.admit_submit("alice", 100)
    usage = registry.get("alice").usage
    assert usage.in_flight == 2
    assert usage.throttled == 1


def test_queued_bytes_quota_tracks_dispatch_and_requeue():
    registry = TenantRegistry()
    registry.create("alice", quota=TenantQuota(max_queued_bytes=150))
    registry.admit_submit("alice", 100)
    with pytest.raises(TenantQuotaExceededError):
        registry.admit_submit("alice", 100)
    registry.task_dispatched("alice", 100)  # bytes leave the queue
    registry.admit_submit("alice", 100)
    registry.task_requeued("alice", 100)  # crash: bytes come back
    with pytest.raises(TenantQuotaExceededError):
        registry.admit_submit("alice", 100)


def test_function_quota():
    registry = TenantRegistry()
    registry.create("alice", quota=TenantQuota(max_functions=1))
    registry.admit_function("alice")
    with pytest.raises(TenantQuotaExceededError):
        registry.admit_function("alice")


def test_rate_limit_throttles_with_retry_after():
    registry = TenantRegistry()
    registry.create("alice", rate=5.0, burst=1.0)
    registry.admit_submit("alice", 0)
    with pytest.raises(TenantQuotaExceededError) as excinfo:
        registry.admit_submit("alice", 0)
    assert excinfo.value.retry_after > 0.0


def test_release_submit_undoes_reservation():
    registry = TenantRegistry()
    registry.create("alice", quota=TenantQuota(max_in_flight=1))
    registry.admit_submit("alice", 64)
    registry.release_submit("alice", 64)
    registry.admit_submit("alice", 64)  # headroom came back
    usage = registry.get("alice").usage
    assert usage.in_flight == 1
    assert usage.queued_bytes == 64
    assert usage.submits == 1  # the rejected submit does not count


def test_render_tenant_table():
    registry = TenantRegistry()
    registry.create("alice", weight=3, quota=TenantQuota(max_in_flight=8))
    registry.create("bob", rate=2.0)
    registry.admit_submit("alice", 10)
    table = render_tenant_table(registry)
    lines = table.splitlines()
    assert "tenant" in lines[0] and "throttled" in lines[0]
    assert any("alice" in line and "1/8" in line for line in lines)
    assert any("bob" in line and "2" in line for line in lines)
