"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_testbed_command(capsys):
    assert main(["testbed"]) == 0
    out = capsys.readouterr().out
    assert "theta-login" in out
    assert "outbound-only" in out
    assert "NO (needs tunnel)" in out


def test_moldesign_command(capsys):
    code = main(
        [
            "moldesign",
            "--simulations", "24",
            "--molecules", "300",
            "--time-scale", "0.002",
            "--workflow", "parsl+redis",
            "--timeout", "120",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "found" in out
    assert "utilization" in out


def test_finetune_command(capsys):
    code = main(
        [
            "finetune",
            "--structures", "6",
            "--pretrain", "60",
            "--time-scale", "0.002",
            "--timeout", "180",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "force RMSD" in out


def test_compare_command(capsys):
    code = main(
        ["compare", "--tasks", "3", "--payload-mb", "0.2", "--time-scale", "0.002"]
    )
    assert code == 0
    out = capsys.readouterr().out
    for config in ("parsl", "parsl+redis", "funcx+globus"):
        assert config in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["launch-rockets"])
