"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_parser_requires_command(capsys):
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_testbed_command(capsys):
    assert main(["testbed"]) == 0
    out = capsys.readouterr().out
    assert "theta-login" in out
    assert "outbound-only" in out
    assert "NO (needs tunnel)" in out


def test_moldesign_command(capsys):
    code = main(
        [
            "moldesign",
            "--simulations", "24",
            "--molecules", "300",
            "--time-scale", "0.002",
            "--workflow", "parsl+redis",
            "--timeout", "120",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "found" in out
    assert "utilization" in out


def test_finetune_command(capsys):
    code = main(
        [
            "finetune",
            "--structures", "6",
            "--pretrain", "60",
            "--time-scale", "0.002",
            "--timeout", "180",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "force RMSD" in out


def test_compare_command(capsys):
    code = main(
        ["compare", "--tasks", "3", "--payload-mb", "0.2", "--time-scale", "0.002"]
    )
    assert code == 0
    out = capsys.readouterr().out
    for config in ("parsl", "parsl+redis", "funcx+globus"):
        assert config in out


def test_tenants_command(capsys):
    code = main(["tenants", "--tasks", "3", "--shards", "2", "--time-scale", "0.002"])
    assert code == 0
    out = capsys.readouterr().out
    for tenant in ("moldesign", "finetune", "guest"):
        assert tenant in out
    assert "weight" in out
    assert "throttled" in out
    assert "tasks completed on 2 shard(s)" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["launch-rockets"])


def test_moldesign_trace_out_then_trace_command(tmp_path, capsys):
    """End to end: record a traced campaign, then reconstruct it."""
    trace_file = tmp_path / "run.jsonl"
    code = main(
        [
            "moldesign",
            "--simulations", "6",
            "--molecules", "100",
            "--time-scale", "0.002",
            "--timeout", "120",
            "--trace-out", str(trace_file),
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "trace summary" in out
    assert "== metrics ==" in out
    assert trace_file.exists()

    code = main(["trace", str(trace_file), "--limit", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "trace summary" in out
    assert "no orphan spans" in out
    assert "critical path" in out
    assert "worker.compute" in out


def test_trace_command_missing_file(tmp_path, capsys):
    assert main(["trace", str(tmp_path / "nope.jsonl")]) != 0


def test_trace_command_specific_trace_id(tmp_path, capsys):
    import json

    trace_file = tmp_path / "tiny.jsonl"
    spans = [
        {"name": "task", "trace_id": "t1", "span_id": "root",
         "parent_id": None, "start": 0.0, "end": 2.0},
        {"name": "worker.run", "trace_id": "t1", "span_id": "run",
         "parent_id": "root", "start": 0.5, "end": 1.5},
    ]
    trace_file.write_text("\n".join(json.dumps(s) for s in spans) + "\n")
    assert main(["trace", str(trace_file), "--trace-id", "t1"]) == 0
    out = capsys.readouterr().out
    assert "critical path: trace t1" in out
