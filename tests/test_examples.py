"""Smoke tests: the shipped examples must run end to end."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).parent.parent / "examples"


def _run(script: str, *args: str, timeout: int = 240) -> str:
    proc = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert proc.returncode == 0, proc.stderr[-2000:]
    return proc.stdout


def test_quickstart_runs():
    out = _run("quickstart.py")
    assert "task results" in out
    assert "training" in out


def test_data_fabric_tour_runs():
    out = _run("data_fabric_tour.py")
    assert "deployment reality check" in out
    assert "refused" in out
    assert "get-on-GPU FAILS" in out  # file backend across facilities


def test_molecular_design_example_runs():
    out = _run(
        "molecular_design.py",
        "--simulations", "40",
        "--molecules", "400",
        "--time-scale", "0.002",
    )
    assert "molecules found" in out
    assert "discovery curve" in out


def test_workflow_comparison_example_runs():
    out = _run("workflow_comparison.py", "--tasks", "4", "--payload-mb", "0.5")
    assert "parsl+redis" in out
    assert "funcx+globus" in out
