"""Tests for serialization and nominal payload sizing."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import SerializationError
from repro.serialize import (
    Blob,
    Payload,
    deserialize,
    deserialize_cost,
    nominal_size,
    serialize,
    serialize_cost,
)


def test_roundtrip_simple_objects():
    for obj in [1, "text", [1, 2, 3], {"a": (1, 2)}, None, 3.5]:
        assert deserialize(serialize(obj)) == obj


def test_roundtrip_numpy():
    arr = np.arange(12).reshape(3, 4)
    out = deserialize(serialize(arr))
    np.testing.assert_array_equal(out, arr)


def test_blob_roundtrip_and_equality():
    blob = Blob(1234, tag="x")
    out = deserialize(serialize(blob))
    assert out == blob
    assert hash(out) == hash(blob)
    assert out != Blob(1234, tag="y")


def test_blob_rejects_negative():
    with pytest.raises(ValueError):
        Blob(-1)


def test_blob_counts_toward_nominal_size():
    payload = serialize(Blob(5_000_000))
    assert payload.nominal_size >= 5_000_000
    assert len(payload.data) < 1000  # real bytes stay tiny


def test_nested_blobs_all_counted():
    obj = {"a": Blob(1_000_000), "b": [Blob(2_000_000), Blob(3_000_000)]}
    payload = serialize(obj)
    assert payload.nominal_size >= 6_000_000


def test_payload_len_is_nominal():
    payload = serialize(Blob(42_000))
    assert len(payload) == payload.nominal_size


def test_nested_serialize_calls_do_not_leak_accounting():
    class Sneaky:
        def __reduce__(self):
            # Serializing this object serializes a Blob internally.
            inner = serialize(Blob(7_000_000))
            return (bytes, (inner.data,))

    payload = serialize([Sneaky()])
    # The inner serialize already consumed its own accounting; the outer
    # payload must not double count it.
    assert payload.nominal_size < 7_000_000


def test_unpicklable_raises_serialization_error():
    with pytest.raises(SerializationError):
        serialize(lambda x: x)


def test_deserialize_garbage_raises():
    with pytest.raises(SerializationError):
        deserialize(b"not-a-pickle")


def test_deserialize_accepts_raw_bytes():
    payload = serialize({"k": 1})
    assert deserialize(payload.data) == {"k": 1}


# -- nominal_size estimates -----------------------------------------------------


def test_nominal_size_basics():
    assert nominal_size(b"abcd") == 4
    assert nominal_size("ab") == 2
    assert nominal_size(None) == 1
    assert nominal_size(True) == 1
    assert nominal_size(7) == 8
    assert nominal_size(1.5) == 8


def test_nominal_size_ndarray():
    arr = np.zeros((10, 10), dtype=np.float64)
    assert nominal_size(arr) == 800


def test_nominal_size_containers_sum():
    assert nominal_size([b"ab", b"cd"]) == 8 + 4
    assert nominal_size({"k": b"abc"}) == 8 + 1 + 3


def test_nominal_size_blob():
    assert nominal_size(Blob(999)) == 999


def test_nominal_size_proxy_is_reference_sized():
    from repro.proxystore.proxy import Proxy, SimpleFactory

    proxy = Proxy(SimpleFactory(np.zeros(1_000_000)))
    assert nominal_size(proxy) == Proxy.REFERENCE_SIZE
    # Sizing must not have resolved the proxy.
    from repro.proxystore.proxy import is_resolved

    assert not is_resolved(proxy)


class _Custom:
    def __init__(self):
        self.data = list(range(100))


def test_nominal_size_fallback_pickles():
    assert nominal_size(_Custom()) > 50


# -- cost models --------------------------------------------------------------------


def test_costs_monotonic_in_size():
    assert serialize_cost(10) < serialize_cost(10_000_000)
    assert deserialize_cost(10) < deserialize_cost(10_000_000)


def test_costs_have_base():
    assert serialize_cost(0) > 0
    assert deserialize_cost(0) > 0


@given(st.binary(max_size=2048))
def test_bytes_roundtrip_property(data):
    payload = serialize(data)
    assert deserialize(payload) == data
    assert payload.nominal_size >= len(data)


@given(
    st.recursive(
        st.one_of(st.integers(), st.text(max_size=20), st.none()),
        lambda children: st.lists(children, max_size=4),
        max_leaves=20,
    )
)
def test_structured_roundtrip_property(obj):
    assert deserialize(serialize(obj)) == obj
