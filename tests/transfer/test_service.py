"""Tests for the Globus-like transfer service and client."""

import pytest

from repro.exceptions import TransferError
from repro.net.clock import get_clock
from repro.net.context import at_site
from repro.net.defaults import PaperConstants
from repro.net.topology import UniformLatency
from repro.transfer import (
    TransferClient,
    TransferEndpoint,
    TransferService,
    TransferStatus,
)


@pytest.fixture
def rig(testbed):
    constants = PaperConstants(
        globus_request_latency=UniformLatency(0.05, 0.06),
        globus_transfer_base=UniformLatency(0.2, 0.3),
        globus_poll_interval=0.05,
    )
    service = TransferService(
        testbed.globus_cloud, testbed.network, constants
    ).start()
    src = TransferEndpoint(
        "ep-src", testbed.theta_login, testbed.mounts.volume("theta-lustre")
    )
    dst = TransferEndpoint("ep-dst", testbed.venti, testbed.mounts.volume("venti-local"))
    service.register_endpoint(src)
    service.register_endpoint(dst)
    client = TransferClient(service, "tester", site=testbed.theta_login)
    yield testbed, service, src, dst, client
    service.stop()


def test_transfer_moves_file(rig):
    testbed, service, src, dst, client = rig
    src.volume.write("f1", b"payload", nominal_size=1000)
    task_id = client.submit("ep-src", "ep-dst", [("f1", "f1")])
    task = client.wait(task_id, timeout=60)
    assert task.status is TransferStatus.SUCCEEDED
    assert dst.volume.read("f1") == b"payload"
    assert dst.volume.size("f1") == 1000
    assert task.bytes_transferred == 1000


def test_transfer_multiple_files(rig):
    testbed, service, src, dst, client = rig
    for i in range(3):
        src.volume.write(f"f{i}", bytes([i]), nominal_size=10)
    task_id = client.submit("ep-src", "ep-dst", [(f"f{i}", f"g{i}") for i in range(3)])
    client.wait(task_id, timeout=60)
    for i in range(3):
        assert dst.volume.read(f"g{i}") == bytes([i])


def test_missing_source_file_fails(rig):
    testbed, service, src, dst, client = rig
    task_id = client.submit("ep-src", "ep-dst", [("ghost", "ghost")])
    with pytest.raises(TransferError):
        client.wait(task_id, timeout=60)
    assert client.task(task_id).status is TransferStatus.FAILED


def test_empty_items_rejected(rig):
    _, service, *_ = rig
    with pytest.raises(TransferError):
        service.submit("u", "ep-src", "ep-dst", [])


def test_unknown_endpoint_rejected(rig):
    testbed, service, src, dst, client = rig
    with pytest.raises(TransferError):
        client.submit("ep-src", "ghost", [("a", "b")])


def test_duplicate_endpoint_rejected(rig):
    testbed, service, src, dst, client = rig
    with pytest.raises(TransferError):
        service.register_endpoint(src)


def test_unknown_task_status(rig):
    testbed, service, src, dst, client = rig
    with pytest.raises(TransferError):
        client.status("gt-999999")


def test_submission_pays_https_latency(rig):
    testbed, service, src, dst, client = rig
    src.volume.write("f", b"x", nominal_size=1)
    clock = get_clock()
    start = clock.now()
    client.submit("ep-src", "ep-dst", [("f", "f")])
    cost = clock.now() - start
    assert cost >= 0.05  # at least the configured request latency


def test_transfer_duration_in_expected_band(rig):
    testbed, service, src, dst, client = rig
    src.volume.write("f", b"x", nominal_size=1)
    task_id = client.submit("ep-src", "ep-dst", [("f", "f")])
    task = client.wait(task_id, timeout=60)
    took = task.completed_at - task.started_at
    assert 0.2 <= took <= 5.0


def test_paused_endpoint_defers_transfer(rig):
    testbed, service, src, dst, client = rig
    src.volume.write("f", b"x", nominal_size=1)
    service.pause_endpoint("ep-dst")
    task_id = client.submit("ep-src", "ep-dst", [("f", "f")])
    get_clock().sleep(1.0)
    assert client.status(task_id) is TransferStatus.QUEUED
    service.resume_endpoint("ep-dst")
    task = client.wait(task_id, timeout=60)
    assert task.status is TransferStatus.SUCCEEDED


def test_injected_failure_is_retried(rig):
    testbed, service, src, dst, client = rig
    src.volume.write("f", b"x", nominal_size=1)
    service.inject_failure("simulated checksum error")
    task_id = client.submit("ep-src", "ep-dst", [("f", "f")])
    task = client.wait(task_id, timeout=120)
    assert task.status is TransferStatus.SUCCEEDED
    assert task.retries >= 1


def test_repeated_failures_exhaust_retries(rig):
    testbed, service, src, dst, client = rig
    src.volume.write("f", b"x", nominal_size=1)
    for _ in range(TransferService.MAX_RETRIES + 1):
        service.inject_failure("persistent error")
    task_id = client.submit("ep-src", "ep-dst", [("f", "f")])
    with pytest.raises(TransferError):
        client.wait(task_id, timeout=120)
    assert client.task(task_id).status is TransferStatus.FAILED


def test_concurrency_limit_enforced(testbed):
    constants = PaperConstants(
        globus_request_latency=UniformLatency(0.01, 0.02),
        globus_transfer_base=UniformLatency(2.0, 2.1),
        globus_poll_interval=0.05,
        globus_concurrent_transfer_limit=2,
    )
    service = TransferService(testbed.globus_cloud, testbed.network, constants).start()
    src = TransferEndpoint("s", testbed.theta_login, testbed.mounts.volume("theta-lustre"))
    dst = TransferEndpoint("d", testbed.venti, testbed.mounts.volume("venti-local"))
    service.register_endpoint(src)
    service.register_endpoint(dst)
    client = TransferClient(service, "limited", site=testbed.theta_login)
    try:
        for i in range(5):
            src.volume.write(f"f{i}", b"x", nominal_size=1)
        ids = [client.submit("s", "d", [(f"f{i}", f"f{i}")]) for i in range(5)]
        get_clock().sleep(1.0)
        assert service.active_count("limited") <= 2
        for task_id in ids:
            client.wait(task_id, timeout=120)
    finally:
        service.stop()


def test_wait_timeout(rig):
    testbed, service, src, dst, client = rig
    src.volume.write("f", b"x", nominal_size=1)
    service.pause_endpoint("ep-dst")
    task_id = client.submit("ep-src", "ep-dst", [("f", "f")])
    with pytest.raises(TransferError):
        client.wait(task_id, timeout=0.5)
    service.resume_endpoint("ep-dst")


def test_wait_timeout_cancels_the_abandoned_task(rig):
    """A timed-out wait must not leave the task holding a concurrency slot."""
    from repro.observe import MetricsRegistry, set_metrics

    metrics = MetricsRegistry()
    set_metrics(metrics)
    testbed, service, src, dst, client = rig
    src.volume.write("f", b"x", nominal_size=1)
    service.pause_endpoint("ep-dst")
    task_id = client.submit("ep-src", "ep-dst", [("f", "f")])
    with pytest.raises(TransferError):
        client.wait(task_id, timeout=0.5)
    assert client.status(task_id) is TransferStatus.CANCELLED
    assert metrics.counter_total("transfer.wait_timeouts") == 1
    service.resume_endpoint("ep-dst")
    get_clock().sleep(1.0)  # a cancelled task must never go ACTIVE again
    assert client.status(task_id) is TransferStatus.CANCELLED


def test_wait_timeout_can_leave_the_task_running(rig):
    testbed, service, src, dst, client = rig
    src.volume.write("f", b"x", nominal_size=1)
    service.pause_endpoint("ep-dst")
    task_id = client.submit("ep-src", "ep-dst", [("f", "f")])
    with pytest.raises(TransferError):
        client.wait(task_id, timeout=0.5, cancel_on_timeout=False)
    assert client.status(task_id) is TransferStatus.QUEUED
    service.resume_endpoint("ep-dst")
    assert client.wait(task_id, timeout=60).status is TransferStatus.SUCCEEDED


def test_cancel_queued_task_is_immediate(rig):
    testbed, service, src, dst, client = rig
    src.volume.write("f", b"x", nominal_size=1)
    service.pause_endpoint("ep-dst")  # keep it QUEUED
    task_id = client.submit("ep-src", "ep-dst", [("f", "f")])
    assert client.cancel(task_id) is True
    task = service.status(task_id)
    assert task.status is TransferStatus.CANCELLED
    assert task.completed_at is not None
    with pytest.raises(TransferError):
        client.wait(task_id, timeout=10)
    # Cancelling a terminal task reports False instead of raising.
    assert client.cancel(task_id) is False
    service.resume_endpoint("ep-dst")


def test_cancel_active_task_resolves_to_cancelled(testbed):
    constants = PaperConstants(
        globus_request_latency=UniformLatency(0.01, 0.02),
        globus_transfer_base=UniformLatency(5.0, 5.1),  # long enough to catch ACTIVE
        globus_poll_interval=0.05,
    )
    service = TransferService(testbed.globus_cloud, testbed.network, constants).start()
    src = TransferEndpoint("s", testbed.theta_login, testbed.mounts.volume("theta-lustre"))
    dst = TransferEndpoint("d", testbed.venti, testbed.mounts.volume("venti-local"))
    service.register_endpoint(src)
    service.register_endpoint(dst)
    client = TransferClient(service, "canceller", site=testbed.theta_login)
    try:
        src.volume.write("f", b"payload", nominal_size=1)
        task_id = client.submit("s", "d", [("f", "f")])
        deadline = get_clock().now() + 30.0
        while client.status(task_id) is not TransferStatus.ACTIVE:
            assert get_clock().now() < deadline, "transfer never went ACTIVE"
            get_clock().sleep(0.1)
        assert client.cancel(task_id) is True
        with pytest.raises(TransferError):
            client.wait(task_id, timeout=60)
        assert client.status(task_id) is TransferStatus.CANCELLED
        # The abandoned copy wrote nothing at the destination.
        with pytest.raises(Exception):
            dst.volume.read("f")
        assert service.active_count("canceller") == 0
    finally:
        service.stop()


def test_transfer_wrapper_retries_terminal_failures(rig):
    from repro.chaos.policy import RetryPolicy
    from repro.observe import MetricsRegistry, set_metrics

    metrics = MetricsRegistry()
    set_metrics(metrics)
    testbed, service, src, dst, client = rig
    retrying = TransferClient(
        service,
        "retrier",
        site=testbed.theta_login,
        retry_policy=RetryPolicy(max_attempts=3, base_delay=0.1, max_delay=1.0),
    )
    src.volume.write("f", b"x", nominal_size=1)
    # Enough injected failures to kill the first *task* terminally; the
    # client-level resubmission then finds a healthy service.
    for _ in range(TransferService.MAX_RETRIES + 1):
        service.inject_failure("persistent error")
    task = retrying.transfer("ep-src", "ep-dst", [("f", "f")], timeout=120)
    assert task.status is TransferStatus.SUCCEEDED
    assert metrics.counter_total("transfer.client_retries") == 1


def test_transfer_wrapper_exhausts_into_retry_exhausted(rig):
    from repro.chaos.policy import RetryPolicy
    from repro.exceptions import RetryExhaustedError

    testbed, service, src, dst, client = rig
    retrying = TransferClient(
        service,
        "retrier",
        site=testbed.theta_login,
        retry_policy=RetryPolicy(max_attempts=2, base_delay=0.1, max_delay=1.0),
    )
    src.volume.write("f", b"x", nominal_size=1)
    for _ in range(2 * (TransferService.MAX_RETRIES + 1)):
        service.inject_failure("persistent error")
    with pytest.raises(RetryExhaustedError) as excinfo:
        retrying.transfer("ep-src", "ep-dst", [("f", "f")], timeout=120)
    assert excinfo.value.attempts == 2


def test_transfer_wrapper_without_policy_fails_fast(rig):
    testbed, service, src, dst, client = rig
    src.volume.write("f", b"x", nominal_size=1)
    for _ in range(TransferService.MAX_RETRIES + 1):
        service.inject_failure("persistent error")
    with pytest.raises(TransferError):
        client.transfer("ep-src", "ep-dst", [("f", "f")], timeout=120)
